//! Property-based tests (proptest) for the graph substrate: structural
//! invariants that must hold for *every* graph, not just the hand-picked
//! fixtures of the unit tests.

use proptest::prelude::*;

use radio_graph::arboricity::{arboricity_lower_bound, arboricity_upper_bound};
use radio_graph::bfs::{bfs_distances, bfs_tree, multi_source_bfs};
use radio_graph::cluster_graph::ClusterGraph;
use radio_graph::diameter::{double_sweep_lower_bound, exact_diameter};
use radio_graph::generators;
use radio_graph::lower_bound::{build_disjointness_graph, ones, zeros};
use radio_graph::mpx::cluster_with_start_times;
use radio_graph::{Graph, INFINITY};

/// Strategy: a random edge list over `n ≤ 24` vertices.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..24).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..60);
        edges.prop_map(move |es| Graph::from_edges(n, &es))
    })
}

/// Strategy: a connected random graph (a random tree plus extra edges).
fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (
        2usize..20,
        any::<u64>(),
        proptest::collection::vec((0usize..20, 0usize..20), 0..30),
    )
        .prop_map(|(n, seed, extra)| {
            use rand::SeedableRng;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let tree = generators::random_tree(n, &mut rng);
            let mut edges: Vec<(usize, usize)> = tree.edges().collect();
            for (u, v) in extra {
                if u % n != v % n {
                    edges.push((u % n, v % n));
                }
            }
            Graph::from_edges(n, &edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn handshake_lemma(g in arb_graph()) {
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    #[test]
    fn adjacency_is_symmetric(g in arb_graph()) {
        for (u, v) in g.edges() {
            prop_assert!(g.has_edge(u, v));
            prop_assert!(g.has_edge(v, u));
            prop_assert_ne!(u, v);
        }
    }

    #[test]
    fn bfs_satisfies_edge_lipschitz_property(g in arb_graph()) {
        // Adjacent vertices have distances differing by at most one.
        let d = bfs_distances(&g, 0);
        for (u, v) in g.edges() {
            match (d[u], d[v]) {
                (INFINITY, INFINITY) => {}
                (a, b) => {
                    prop_assert_ne!(a, INFINITY);
                    prop_assert_ne!(b, INFINITY);
                    prop_assert!(a.abs_diff(b) <= 1, "edge ({u},{v}): {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn multi_source_is_min_of_single_sources(g in arb_graph(), s1 in 0usize..24, s2 in 0usize..24) {
        let n = g.num_nodes();
        let s1 = s1 % n;
        let s2 = s2 % n;
        let joint = multi_source_bfs(&g, &[s1, s2]);
        let a = bfs_distances(&g, s1);
        let b = bfs_distances(&g, s2);
        for v in g.nodes() {
            prop_assert_eq!(joint[v], a[v].min(b[v]), "vertex {}", v);
        }
    }

    #[test]
    fn bfs_tree_parents_are_one_hop_closer(g in arb_connected_graph()) {
        let t = bfs_tree(&g, 0);
        for v in g.nodes() {
            if let Some(p) = t.parent[v] {
                prop_assert!(g.has_edge(p, v));
                prop_assert_eq!(t.dist[v], t.dist[p] + 1);
            }
        }
    }

    #[test]
    fn double_sweep_is_a_two_approximation(g in arb_connected_graph()) {
        let diam = exact_diameter(&g).unwrap();
        let est = double_sweep_lower_bound(&g, 0).unwrap();
        prop_assert!(est <= diam);
        prop_assert!(2 * est >= diam);
    }

    #[test]
    fn arboricity_bounds_are_ordered(g in arb_graph()) {
        prop_assert!(arboricity_lower_bound(&g) <= arboricity_upper_bound(&g).max(arboricity_lower_bound(&g)));
        // Degeneracy of any simple graph is at most n − 1.
        prop_assert!(arboricity_upper_bound(&g) < g.num_nodes().max(1));
    }

    #[test]
    fn mpx_clustering_is_a_partition_into_connected_clusters(
        g in arb_connected_graph(),
        starts in proptest::collection::vec(1u64..40, 20),
    ) {
        let n = g.num_nodes();
        let start_times: Vec<u64> = (0..n).map(|v| starts[v % starts.len()]).collect();
        let c = cluster_with_start_times(&g, 0.25, &start_times);
        prop_assert_eq!(c.cluster_sizes().iter().sum::<usize>(), n);
        prop_assert!(c.validate(&g).is_ok(), "{:?}", c.validate(&g));
        // The quotient has no more vertices than the original graph.
        let cg = ClusterGraph::build(&g, c);
        prop_assert!(cg.num_clusters() <= n);
    }

    #[test]
    fn cluster_graph_distance_never_exceeds_original(
        g in arb_connected_graph(),
        starts in proptest::collection::vec(1u64..40, 20),
        u in 0usize..20,
        v in 0usize..20,
    ) {
        // Contracting connected clusters can only shrink hop distances.
        let n = g.num_nodes();
        let u = u % n;
        let v = v % n;
        let start_times: Vec<u64> = (0..n).map(|x| starts[x % starts.len()]).collect();
        let c = cluster_with_start_times(&g, 0.25, &start_times);
        let cg = ClusterGraph::build(&g, c);
        let d_g = bfs_distances(&g, u)[v];
        let d_star = cg.cluster_distance(u, v);
        prop_assert!(d_star <= d_g);
    }

    #[test]
    fn ones_and_zeros_partition(s in 0u64..256, ell in 1u32..9) {
        let s = s % (1 << ell);
        let o = ones(s, ell);
        let z = zeros(s, ell);
        prop_assert_eq!(o.len() + z.len(), ell as usize);
        for j in 1..=ell {
            prop_assert!(o.contains(&j) ^ z.contains(&j));
        }
    }

    #[test]
    fn disjointness_graph_diameter_encodes_intersection(
        a in proptest::collection::btree_set(0u64..16, 1..8),
        b in proptest::collection::btree_set(0u64..16, 1..8),
    ) {
        let set_a: Vec<u64> = a.into_iter().collect();
        let set_b: Vec<u64> = b.into_iter().collect();
        let inst = build_disjointness_graph(&set_a, &set_b, 4);
        let diam = exact_diameter(&inst.graph).unwrap();
        prop_assert_eq!(diam, inst.predicted_diameter());
        let disjoint = set_a.iter().all(|x| !set_b.contains(x));
        prop_assert_eq!(diam == 2, disjoint);
    }

    #[test]
    fn induced_subgraph_preserves_adjacency(g in arb_graph(), keep_bits in proptest::collection::vec(any::<bool>(), 24)) {
        let n = g.num_nodes();
        let keep: Vec<bool> = (0..n).map(|v| keep_bits[v % keep_bits.len()]).collect();
        let (sub, remap) = g.induced_subgraph(&keep);
        for (u, v) in g.edges() {
            if let (Some(nu), Some(nv)) = (remap[u], remap[v]) { prop_assert!(sub.has_edge(nu, nv)) }
        }
        for (a, b) in sub.edges() {
            let ou = remap.iter().position(|&x| x == Some(a)).unwrap();
            let ov = remap.iter().position(|&x| x == Some(b)).unwrap();
            prop_assert!(g.has_edge(ou, ov));
        }
    }
}
