//! A per-device state-machine interface for round-by-round protocols.
//!
//! The higher-level algorithms in this repository are orchestrated at the
//! Local-Broadcast level (see `radio-protocols`), which is how the paper
//! itself reasons. This module provides the complementary, fully local view:
//! a [`Device`] decides an action each slot purely from its own state and
//! the feedback it has observed, and a [`run_devices`] loop drives an
//! arbitrary set of devices against the channel. It is used by the examples
//! (e.g. the steady-state polling scenario from the paper's introduction)
//! and by tests that validate the channel semantics end-to-end.

use std::collections::{BTreeMap, HashMap};

use radio_graph::NodeId;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::model::{Action, Feedback, Payload};
use crate::network::RadioNetwork;

/// A device participating in a slot-by-slot protocol.
pub trait Device<M: Payload> {
    /// Decides the action for slot `slot`, given the feedback observed in
    /// the previous slot (`None` in slot 0 or if the device idled or
    /// transmitted).
    fn act(&mut self, slot: u64, prev_feedback: Option<&Feedback<M>>) -> Action<M>;

    /// Whether the device has halted. Halted devices idle forever.
    fn halted(&self) -> bool;
}

/// Runs a set of devices for at most `max_slots` slots or until all halt.
/// Returns the number of slots executed.
///
/// Devices are polled in ascending node order each slot — `BTreeMap`
/// iteration order — so that a [`Device`] implementation drawing from a
/// seeded RNG shared across devices behaves identically on every run.
/// (With a `HashMap` the per-process-randomized iteration order would
/// permute the RNG stream across devices, the same determinism bug class
/// the Local-Broadcast layer fixed by iterating receivers in node order.)
pub fn run_devices<M: Payload, D: Device<M>>(
    net: &mut RadioNetwork<M>,
    devices: &mut BTreeMap<NodeId, D>,
    max_slots: u64,
) -> u64 {
    let mut last_feedback: HashMap<NodeId, Feedback<M>> = HashMap::new();
    for slot in 0..max_slots {
        if devices.values().all(|d| d.halted()) {
            return slot;
        }
        let mut actions: HashMap<NodeId, Action<M>> = HashMap::new();
        for (&v, dev) in devices.iter_mut() {
            if dev.halted() {
                continue;
            }
            let action = dev.act(slot, last_feedback.get(&v));
            if action.costs_energy() {
                actions.insert(v, action);
            }
        }
        last_feedback = net.step(&actions);
    }
    max_slots
}

/// The steady-state dissemination scheme from the paper's introduction:
/// a device with BFS label `i` wakes only at slots `j·P + (i mod P)` to
/// listen for the alert; once it holds the alert it forwards it during the
/// slots in which the label-`(i+1)` devices listen.
///
/// Because several same-label devices may hold the alert simultaneously,
/// forwarding uses a small Decay-style backoff *across polling cycles*: in
/// each cycle a holder transmits in its forwarding slot with probability
/// `2^{−(1 + cycle mod L)}`, so that within `O(L)` cycles some slot has
/// exactly one transmitter in each listener's neighbourhood w.h.p. A holder
/// gives up (halts) after `2·L` forwarding cycles.
///
/// With polling period `P`, the alert's latency grows by a factor of
/// roughly `P` while per-device energy — awake slots — is independent of
/// `P` (each device listens at most once per cycle), which is the
/// latency-for-energy trade the paper's introduction describes
/// (experiment E14).
#[derive(Clone, Debug)]
pub struct PollingDevice {
    /// BFS label of this device.
    pub label: u64,
    /// Polling period `P` (at least 2).
    pub period: u64,
    /// The message held (devices at label 0 start with it).
    pub message: Option<u64>,
    /// Slot horizon after which the device halts.
    pub deadline: u64,
    /// Slot at which the message was first received (0 for the source).
    pub received_at: Option<u64>,
    /// Number of decay levels in the forwarding backoff.
    decay_levels: u64,
    /// Forwarding cycles used so far.
    forward_cycles: u64,
    rng: ChaCha8Rng,
}

impl PollingDevice {
    /// Creates a device with BFS label `label`, polling period `period`, and
    /// a halting deadline of `deadline` slots. `initial_message` seeds the
    /// label-0 source.
    pub fn new(label: u64, period: u64, deadline: u64, initial_message: Option<u64>) -> Self {
        PollingDevice {
            label,
            period: period.max(2),
            message: initial_message,
            deadline,
            received_at: if initial_message.is_some() {
                Some(0)
            } else {
                None
            },
            decay_levels: 6,
            forward_cycles: 0,
            rng: ChaCha8Rng::seed_from_u64(label.wrapping_mul(0x9e3779b97f4a7c15) ^ deadline),
        }
    }

    /// Overrides the RNG seed (so that simulations are reproducible per
    /// device rather than per label).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = ChaCha8Rng::seed_from_u64(seed);
        self
    }

    /// Maximum number of forwarding cycles before the device gives up.
    fn max_forward_cycles(&self) -> u64 {
        8 * self.decay_levels
    }
}

impl Device<u64> for PollingDevice {
    fn act(&mut self, slot: u64, prev_feedback: Option<&Feedback<u64>>) -> Action<u64> {
        // Record a reception from the previous slot.
        if self.message.is_none() {
            if let Some(Feedback::Received(m)) = prev_feedback {
                self.message = Some(*m);
                self.received_at = Some(slot.saturating_sub(1));
            }
        }
        if self.halted() || slot >= self.deadline {
            return Action::Idle;
        }
        let phase = slot % self.period;
        // Waiting for the alert: listen only in this label's polling slot.
        if self.message.is_none() {
            if phase == self.label % self.period {
                return Action::Listen;
            }
            return Action::Idle;
        }
        // Holding the alert: forward it in the slot where label-(i+1)
        // devices listen, with a Decay-style per-cycle backoff.
        if phase == (self.label + 1) % self.period {
            self.forward_cycles += 1;
            let level = 1 + (self.forward_cycles - 1) % self.decay_levels;
            let p = 0.5_f64.powi(level as i32);
            if self.rng.gen_bool(p) {
                return Action::Transmit(self.message.expect("message present"));
            }
        }
        Action::Idle
    }

    fn halted(&self) -> bool {
        self.message.is_some() && self.forward_cycles >= self.max_forward_cycles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::bfs::bfs_distances;
    use radio_graph::generators;

    fn devices_for(
        g: &radio_graph::Graph,
        labels: &[radio_graph::Dist],
        period: u64,
        deadline: u64,
        source: usize,
    ) -> BTreeMap<NodeId, PollingDevice> {
        g.nodes()
            .map(|v| {
                let msg = if v == source { Some(77) } else { None };
                (
                    v,
                    PollingDevice::new(labels[v] as u64, period, deadline, msg)
                        .with_seed(1000 + v as u64),
                )
            })
            .collect()
    }

    #[test]
    fn polling_devices_propagate_along_a_path() {
        let g = generators::path(8);
        let labels = bfs_distances(&g, 0);
        let period = 4u64;
        let deadline = 4000u64;
        let mut devices = devices_for(&g, &labels, period, deadline, 0);
        let mut net: RadioNetwork<u64> = RadioNetwork::new(g.clone());
        run_devices(&mut net, &mut devices, deadline);
        for v in g.nodes() {
            assert_eq!(
                devices[&v].message,
                Some(77),
                "vertex {v} never got the message"
            );
        }
        // Per-device energy stays far below the always-on cost (≈ latency):
        // each device listens at most once per cycle until it receives, and
        // transmits at most 2·L times.
        let latency = g
            .nodes()
            .filter_map(|v| devices[&v].received_at)
            .max()
            .unwrap();
        for v in g.nodes() {
            assert!(
                net.energy(v) <= latency / period + 8 * 6 + 2,
                "vertex {v} used {} slots of energy (latency {latency})",
                net.energy(v)
            );
        }
    }

    #[test]
    fn polling_devices_propagate_on_a_dense_star_despite_collisions() {
        // All leaves share the same label, so forwarding contends; the decay
        // backoff must still deliver the alert from the center to every leaf
        // and onwards is irrelevant (leaves have no further neighbours).
        let g = generators::star(40);
        let labels = bfs_distances(&g, 0);
        let deadline = 2000u64;
        let mut devices = devices_for(&g, &labels, 4, deadline, 0);
        let mut net: RadioNetwork<u64> = RadioNetwork::new(g.clone());
        run_devices(&mut net, &mut devices, deadline);
        let informed = g.nodes().filter(|&v| devices[&v].message.is_some()).count();
        assert_eq!(informed, 40);
    }

    #[test]
    fn polling_devices_propagate_on_a_grid() {
        let g = generators::grid(6, 6);
        let labels = bfs_distances(&g, 0);
        let deadline = 6000u64;
        let mut devices = devices_for(&g, &labels, 8, deadline, 0);
        let mut net: RadioNetwork<u64> = RadioNetwork::new(g.clone());
        run_devices(&mut net, &mut devices, deadline);
        let informed = g.nodes().filter(|&v| devices[&v].message.is_some()).count();
        assert!(
            informed >= 34,
            "only {informed}/36 grid sensors received the alert"
        );
    }

    #[test]
    fn larger_period_costs_latency_not_energy() {
        let g = generators::path(10);
        let labels = bfs_distances(&g, 0);
        let mut results = Vec::new();
        for period in [2u64, 16u64] {
            let deadline = 20_000u64;
            let mut devices = devices_for(&g, &labels, period, deadline, 0);
            let mut net: RadioNetwork<u64> = RadioNetwork::new(g.clone());
            run_devices(&mut net, &mut devices, deadline);
            assert!(g.nodes().all(|v| devices[&v].message.is_some()));
            let latency = g
                .nodes()
                .filter_map(|v| devices[&v].received_at)
                .max()
                .unwrap();
            results.push((latency, net.max_energy()));
        }
        let (lat_small, energy_small) = results[0];
        let (lat_large, energy_large) = results[1];
        // Latency grows with the period...
        assert!(lat_large > lat_small);
        // ...while energy stays in the same ballpark (within 2x).
        assert!(energy_large <= 2 * energy_small.max(8));
    }

    #[test]
    fn run_devices_stops_when_all_halt() {
        let g = generators::path(2);
        let mut devices: BTreeMap<NodeId, PollingDevice> =
            [(0usize, PollingDevice::new(0, 2, 50_000, Some(1)))]
                .into_iter()
                .collect();
        let mut net: RadioNetwork<u64> = RadioNetwork::new(g);
        let slots = run_devices(&mut net, &mut devices, 50_000);
        assert!(
            slots < 50_000,
            "source should halt after its forwarding budget"
        );
    }

    /// A device that draws from an RNG *shared* across all devices (via a
    /// per-run clone of the same seed): only the ascending polling order of
    /// `run_devices` makes its behaviour reproducible.
    struct SharedRngDevice {
        rng: std::rc::Rc<std::cell::RefCell<ChaCha8Rng>>,
        transmissions: u64,
        heard: Vec<u64>,
    }

    impl Device<u64> for SharedRngDevice {
        fn act(&mut self, _slot: u64, prev: Option<&Feedback<u64>>) -> Action<u64> {
            if let Some(Feedback::Received(m)) = prev {
                self.heard.push(*m);
            }
            let x: u64 = self.rng.borrow_mut().gen_range(0u64..100);
            if x < 30 {
                self.transmissions += 1;
                Action::Transmit(x)
            } else {
                Action::Listen
            }
        }

        fn halted(&self) -> bool {
            false
        }
    }

    #[test]
    fn run_devices_is_deterministic_across_repeated_runs() {
        // Same seeds, two runs: byte-identical energy reports, transmission
        // counts, and reception logs — even though every device draws from
        // one shared RNG, whose stream order is fixed by the ascending
        // iteration of run_devices.
        let g = generators::grid(4, 4);
        let run = || {
            let shared = std::rc::Rc::new(std::cell::RefCell::new(ChaCha8Rng::seed_from_u64(42)));
            let mut devices: BTreeMap<NodeId, SharedRngDevice> = g
                .nodes()
                .map(|v| {
                    (
                        v,
                        SharedRngDevice {
                            rng: shared.clone(),
                            transmissions: 0,
                            heard: Vec::new(),
                        },
                    )
                })
                .collect();
            let mut net: RadioNetwork<u64> = RadioNetwork::new(g.clone());
            let slots = run_devices(&mut net, &mut devices, 200);
            let log: Vec<(u64, Vec<u64>)> = devices
                .values()
                .map(|d| (d.transmissions, d.heard.clone()))
                .collect();
            (format!("{:?}", net.report()), slots, log)
        };
        assert_eq!(run(), run(), "repeated seeded runs diverged");
    }
}
