//! Per-device energy accounting.
//!
//! The paper's cost measure: the energy of a device is the number of slots
//! in which it listens or transmits; the energy of an algorithm is the
//! maximum over devices. The meter tracks listening and transmitting
//! separately (useful for the "other energy models" discussion, where
//! transmissions are costlier), plus elapsed slots, so both the paper's
//! metric and time complexity fall out of one structure.

use serde::{Deserialize, Serialize};

/// How listening and transmitting slots convert into energy cost.
///
/// The paper's main model charges one unit for either (the default); its
/// "other energy models" discussion considers radios whose transmissions are
/// costlier than listening. The meter always tracks the two counters
/// separately, so the model is applied at read time and one run can be
/// summarised under any model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnergyModel {
    /// `listen = transmit = 1` (the paper's default).
    #[default]
    Uniform,
    /// Per-slot integer weights, e.g. `{ listen: 1, transmit: 3 }` for a
    /// radio whose power amplifier dominates its budget.
    Weighted {
        /// Cost of one listening slot.
        listen: u64,
        /// Cost of one transmitting slot.
        transmit: u64,
    },
}

impl EnergyModel {
    /// The cost of `listen_slots` listens plus `transmit_slots` transmits.
    pub fn cost(&self, listen_slots: u64, transmit_slots: u64) -> u64 {
        match self {
            EnergyModel::Uniform => listen_slots + transmit_slots,
            EnergyModel::Weighted { listen, transmit } => {
                listen * listen_slots + transmit * transmit_slots
            }
        }
    }

    /// A printable label (used by scenario records and capability tables).
    pub fn label(&self) -> String {
        match self {
            EnergyModel::Uniform => "uniform".into(),
            EnergyModel::Weighted { listen, transmit } => format!("w{listen}l{transmit}t"),
        }
    }
}

/// Tracks per-device energy and global time.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EnergyMeter {
    listen: Vec<u64>,
    transmit: Vec<u64>,
    slots: u64,
}

impl EnergyMeter {
    /// A meter for `n` devices, all counters zero.
    pub fn new(n: usize) -> Self {
        EnergyMeter {
            listen: vec![0; n],
            transmit: vec![0; n],
            slots: 0,
        }
    }

    /// Number of devices tracked.
    pub fn num_devices(&self) -> usize {
        self.listen.len()
    }

    /// Records that device `v` listened for one slot.
    pub fn charge_listen(&mut self, v: usize) {
        self.listen[v] += 1;
    }

    /// Records that device `v` transmitted for one slot.
    pub fn charge_transmit(&mut self, v: usize) {
        self.transmit[v] += 1;
    }

    /// Advances global time by one slot.
    pub fn tick(&mut self) {
        self.slots += 1;
    }

    /// Advances global time by `k` slots.
    pub fn tick_by(&mut self, k: u64) {
        self.slots += k;
    }

    /// Total elapsed slots (the algorithm's time complexity so far).
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// Energy of device `v`: slots spent listening or transmitting.
    pub fn energy(&self, v: usize) -> u64 {
        self.listen[v] + self.transmit[v]
    }

    /// Listening slots of device `v`.
    pub fn listen_count(&self, v: usize) -> u64 {
        self.listen[v]
    }

    /// Transmitting slots of device `v`.
    pub fn transmit_count(&self, v: usize) -> u64 {
        self.transmit[v]
    }

    /// Per-device listening slots (indexed by device id).
    pub fn listen_counts(&self) -> &[u64] {
        &self.listen
    }

    /// Per-device transmitting slots (indexed by device id).
    pub fn transmit_counts(&self) -> &[u64] {
        &self.transmit
    }

    /// Energy of device `v` under the given [`EnergyModel`].
    pub fn energy_under(&self, v: usize, model: EnergyModel) -> u64 {
        model.cost(self.listen[v], self.transmit[v])
    }

    /// Maximum per-device energy — the paper's energy cost of the algorithm.
    pub fn max_energy(&self) -> u64 {
        (0..self.num_devices())
            .map(|v| self.energy(v))
            .max()
            .unwrap_or(0)
    }

    /// Sum of all devices' energy (an upper bound on the number of messages
    /// successfully received, per the information-theoretic remark in the
    /// paper's introduction).
    pub fn total_energy(&self) -> u64 {
        (0..self.num_devices()).map(|v| self.energy(v)).sum()
    }

    /// Mean per-device energy.
    pub fn mean_energy(&self) -> f64 {
        if self.num_devices() == 0 {
            0.0
        } else {
            self.total_energy() as f64 / self.num_devices() as f64
        }
    }

    /// Merges another meter's counters into this one (device-wise addition;
    /// time is added too). Panics if the sizes differ.
    pub fn absorb(&mut self, other: &EnergyMeter) {
        assert_eq!(self.num_devices(), other.num_devices());
        for v in 0..self.num_devices() {
            self.listen[v] += other.listen[v];
            self.transmit[v] += other.transmit[v];
        }
        self.slots += other.slots;
    }

    /// Produces an immutable summary.
    pub fn report(&self) -> EnergyReport {
        EnergyReport {
            devices: self.num_devices(),
            slots: self.slots,
            max_energy: self.max_energy(),
            total_energy: self.total_energy(),
            mean_energy: self.mean_energy(),
            max_listen: self.listen.iter().copied().max().unwrap_or(0),
            max_transmit: self.transmit.iter().copied().max().unwrap_or(0),
        }
    }
}

/// Immutable summary of an [`EnergyMeter`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Number of devices.
    pub devices: usize,
    /// Elapsed slots (time complexity).
    pub slots: u64,
    /// Maximum per-device energy (the paper's energy complexity).
    pub max_energy: u64,
    /// Aggregate energy over all devices.
    pub total_energy: u64,
    /// Mean per-device energy.
    pub mean_energy: f64,
    /// Maximum per-device listening slots.
    pub max_listen: u64,
    /// Maximum per-device transmitting slots.
    pub max_transmit: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut m = EnergyMeter::new(3);
        m.charge_listen(0);
        m.charge_listen(0);
        m.charge_transmit(1);
        m.tick();
        m.tick_by(4);
        assert_eq!(m.energy(0), 2);
        assert_eq!(m.energy(1), 1);
        assert_eq!(m.energy(2), 0);
        assert_eq!(m.listen_count(0), 2);
        assert_eq!(m.transmit_count(1), 1);
        assert_eq!(m.max_energy(), 2);
        assert_eq!(m.total_energy(), 3);
        assert_eq!(m.slots(), 5);
        assert!((m.mean_energy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn absorb_adds_counters() {
        let mut a = EnergyMeter::new(2);
        a.charge_listen(0);
        a.tick();
        let mut b = EnergyMeter::new(2);
        b.charge_transmit(0);
        b.charge_listen(1);
        b.tick_by(3);
        a.absorb(&b);
        assert_eq!(a.energy(0), 2);
        assert_eq!(a.energy(1), 1);
        assert_eq!(a.slots(), 4);
    }

    #[test]
    fn report_summarizes() {
        let mut m = EnergyMeter::new(4);
        for _ in 0..5 {
            m.charge_listen(2);
        }
        m.charge_transmit(3);
        m.tick_by(7);
        let r = m.report();
        assert_eq!(r.devices, 4);
        assert_eq!(r.slots, 7);
        assert_eq!(r.max_energy, 5);
        assert_eq!(r.total_energy, 6);
        assert_eq!(r.max_listen, 5);
        assert_eq!(r.max_transmit, 1);
    }

    #[test]
    fn empty_meter_is_all_zero() {
        let m = EnergyMeter::new(0);
        assert_eq!(m.max_energy(), 0);
        assert_eq!(m.total_energy(), 0);
        assert_eq!(m.mean_energy(), 0.0);
    }
}
