//! Core types of the `RN[b]` model: per-slot actions, channel feedback,
//! message payloads, and the collision-detection switch.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// A message payload that knows its encoded size in bits, so the simulator
/// can enforce the `RN[b]` per-message bit budget.
///
/// All of the paper's algorithms work in `RN[O(log n)]`; the payloads they
/// send (IDs, cluster identifiers, layer numbers, distance labels, a few
/// flags) are all `O(log n)` bits, which the tests verify through this
/// trait. The lower bounds hold even in `RN[∞]`, which the simulator models
/// with an unlimited budget.
pub trait Payload: Clone {
    /// Size of this payload in bits when transmitted over the channel.
    fn bit_size(&self) -> usize;
}

impl Payload for Bytes {
    fn bit_size(&self) -> usize {
        8 * self.len()
    }
}

impl Payload for Vec<u8> {
    fn bit_size(&self) -> usize {
        8 * self.len()
    }
}

impl Payload for u64 {
    fn bit_size(&self) -> usize {
        64
    }
}

impl Payload for (u64, u64) {
    fn bit_size(&self) -> usize {
        128
    }
}

impl Payload for () {
    fn bit_size(&self) -> usize {
        0
    }
}

impl Payload for String {
    fn bit_size(&self) -> usize {
        8 * self.len()
    }
}

impl<T: Payload> Payload for Option<T> {
    fn bit_size(&self) -> usize {
        1 + self.as_ref().map_or(0, Payload::bit_size)
    }
}

/// What a device does in one slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action<M> {
    /// Transceiver off; costs no energy.
    Idle,
    /// Listen to the channel; costs one unit of energy.
    Listen,
    /// Transmit `M`; costs one unit of energy.
    Transmit(M),
}

impl<M> Action<M> {
    /// Whether this action costs energy (listen or transmit).
    pub fn costs_energy(&self) -> bool {
        !matches!(self, Action::Idle)
    }

    /// Whether this is a transmission.
    pub fn is_transmit(&self) -> bool {
        matches!(self, Action::Transmit(_))
    }
}

/// What a listening device hears in one slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Feedback<M> {
    /// Exactly one neighbour transmitted; the message was received.
    Received(M),
    /// No feedback. Without collision detection this is everything other
    /// than a successful reception; with collision detection it never
    /// occurs (the listener always learns silence/noise/reception).
    Nothing,
    /// Collision detection only: no neighbour transmitted.
    Silence,
    /// Collision detection only: two or more neighbours transmitted.
    Noise,
}

impl<M> Feedback<M> {
    /// The received message, if any.
    pub fn message(self) -> Option<M> {
        match self {
            Feedback::Received(m) => Some(m),
            _ => None,
        }
    }

    /// Whether a message was received.
    pub fn is_received(&self) -> bool {
        matches!(self, Feedback::Received(_))
    }
}

/// Per-call channel verdict for one receiver of a Local-Broadcast, as
/// surfaced through the round frame's feedback lane.
///
/// Backends without collision detection leave the lane empty (a receiver
/// learns nothing beyond its `delivered` entry). Collision-detection-capable
/// backends record, for every receiver, what the channel revealed over the
/// whole call — which is what lets protocols branch on CD. A
/// [`LbFeedback::Silence`] verdict proves the receiver had no sending
/// neighbour *in that call*; what that licenses is protocol-specific (for
/// an exact wavefront BFS a single silence only rules out the one distance
/// that call would have settled anyway — the sound exploitations are
/// `Noise`-as-information and all-silent-round termination, see
/// `energy-bfs`'s `trivial_bfs_cd`), while a [`LbFeedback::Noise`] verdict
/// proves a sending neighbour existed even though nothing was decoded.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LbFeedback {
    /// A message was received (it is in the frame's `delivered` arena).
    Delivered,
    /// The channel was provably free of sending neighbours: the receiver
    /// observed silence in every slot of a full decay iteration (physical
    /// backend), or has no sender in its neighbourhood (abstract backend).
    Silence,
    /// Channel activity was detected but no message was decoded (collisions
    /// throughout, or an injected delivery failure on the abstract backend).
    Noise,
}

/// Whether listeners can distinguish silence from collisions.
///
/// The paper's algorithms assume the weakest model (no collision detection);
/// its lower bounds are proved even with receiver-side collision detection,
/// so the simulator supports both.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollisionDetection {
    /// Listeners receive [`Feedback::Nothing`] unless exactly one neighbour
    /// transmits. This is the paper's default model.
    #[default]
    None,
    /// Listeners can distinguish [`Feedback::Silence`] (zero transmitters)
    /// from [`Feedback::Noise`] (two or more).
    Receiver,
}

impl CollisionDetection {
    /// Whether receiver-side collision detection is available.
    pub fn is_receiver(&self) -> bool {
        matches!(self, CollisionDetection::Receiver)
    }
}

/// Per-message bit budget: the `b` of `RN[b]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MessageBudget {
    /// Messages may be at most this many bits (`RN[b]`).
    Bits(usize),
    /// No limit (`RN[∞]`, used by the lower-bound experiments).
    Unlimited,
}

impl MessageBudget {
    /// Whether a message of `bits` bits fits in the budget.
    pub fn allows(&self, bits: usize) -> bool {
        match self {
            MessageBudget::Bits(b) => bits <= *b,
            MessageBudget::Unlimited => true,
        }
    }

    /// The conventional `RN[O(log n)]` budget used by the paper's
    /// algorithms: `c · ⌈log₂ n⌉` bits.
    pub fn logarithmic(n: usize, c: usize) -> Self {
        let log = (n.max(2) as f64).log2().ceil() as usize;
        MessageBudget::Bits(c * log.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_energy_classification() {
        assert!(!Action::<u64>::Idle.costs_energy());
        assert!(Action::<u64>::Listen.costs_energy());
        assert!(Action::Transmit(7u64).costs_energy());
        assert!(Action::Transmit(7u64).is_transmit());
        assert!(!Action::<u64>::Listen.is_transmit());
    }

    #[test]
    fn feedback_message_extraction() {
        assert_eq!(Feedback::Received(3u64).message(), Some(3));
        assert_eq!(Feedback::<u64>::Nothing.message(), None);
        assert!(Feedback::Received(1u64).is_received());
        assert!(!Feedback::<u64>::Noise.is_received());
    }

    #[test]
    fn message_budget_checks() {
        let b = MessageBudget::Bits(64);
        assert!(b.allows(64));
        assert!(!b.allows(65));
        assert!(MessageBudget::Unlimited.allows(usize::MAX));
        let lb = MessageBudget::logarithmic(1024, 4);
        assert_eq!(lb, MessageBudget::Bits(40));
    }

    #[test]
    fn payload_sizes() {
        assert_eq!(0u64.bit_size(), 64);
        assert_eq!((1u64, 2u64).bit_size(), 128);
        assert_eq!(().bit_size(), 0);
        assert_eq!(Some(5u64).bit_size(), 65);
        assert_eq!(None::<u64>.bit_size(), 1);
        assert_eq!(Bytes::from_static(b"abc").bit_size(), 24);
        assert_eq!(vec![0u8; 4].bit_size(), 32);
        assert_eq!("hi".to_string().bit_size(), 16);
    }
}
