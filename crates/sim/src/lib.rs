//! Slot-accurate simulator of the `RN[b]` radio-network model (paper,
//! Section 1.1) with per-device energy metering, plus the Decay-based
//! Local-Broadcast primitive of Lemma 2.4.
//!
//! The model:
//!
//! * time is partitioned into discrete, globally synchronised slots;
//! * in each slot a device **idles** (free), **listens**, or **transmits**
//!   a message of at most `b` bits (both cost one unit of energy);
//! * a listener receives a message iff **exactly one** of its neighbours
//!   transmits in that slot; otherwise it hears nothing (the default), or —
//!   in the collision-detection variant used by the lower bounds — it can
//!   distinguish *silence* (no transmitter) from *noise* (two or more).
//!
//! Layering: this crate knows nothing about clustering or BFS. Higher-level
//! algorithms are written against the Local-Broadcast abstraction in
//! `radio-protocols`, which can either run on this physical simulator (every
//! call expands into real Decay slots) or on an abstract backend that counts
//! Local-Broadcast participations directly, as the paper's analysis does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decay;
pub mod device;
pub mod energy;
pub mod frame;
pub mod model;
pub mod network;

pub use decay::{
    decay_local_broadcast, decay_local_broadcast_cd, decay_local_broadcast_once, DecayParams,
    DecayScratch,
};
pub use energy::{EnergyMeter, EnergyModel, EnergyReport};
pub use frame::{NodeSet, NodeSlots, RoundFrame, SlotFrame};
pub use model::{Action, CollisionDetection, Feedback, LbFeedback, Payload};
pub use network::RadioNetwork;
