//! The Decay-based Local-Broadcast primitive (paper, Lemma 2.4).
//!
//! **Local-Broadcast**: given disjoint vertex sets `S` (senders, each
//! holding a message) and `R` (receivers), guarantee that every `v ∈ R`
//! with at least one neighbour in `S` receives *some* neighbour's message
//! with probability `1 − f`.
//!
//! The implementation follows the proof of Lemma 2.4: the protocol runs
//! `O(log f⁻¹)` iterations of `⌈log₂ Δ⌉` slots; in each iteration every
//! sender picks a slot `X_u ∈ [1, log Δ]` with `P(X_u = t) ≥ 2^{−t}` and
//! transmits only in that slot. If the number of senders adjacent to a
//! receiver is in `[2^{t−1}, 2^t]`, then in slot `t` of every iteration the
//! receiver hears a message with constant probability. Receivers stop
//! listening as soon as they have heard something (this is what gives the
//! `O(log Δ)` expected energy for receivers with a sending neighbour);
//! receivers with no sending neighbour listen through all
//! `O(log Δ · log f⁻¹)` slots.
//!
//! The call operates on a reusable [`RoundFrame`]: senders and receivers go
//! in, deliveries come out in `frame.delivered()`, and a [`DecayScratch`]
//! carries the per-slot buffers so that repeated calls (the normal case —
//! every higher-level protocol is a long sequence of Local-Broadcasts)
//! allocate nothing. Senders draw their decay slots in ascending node order
//! — the order [`NodeSlots`](crate::frame::NodeSlots) iterates by
//! construction — so the RNG stream maps to devices deterministically
//! without any per-call sort.

use radio_graph::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::frame::{NodeSet, RoundFrame, SlotFrame};
use crate::model::{CollisionDetection, Feedback, LbFeedback, Payload};
use crate::network::RadioNetwork;

/// Parameters of one Local-Broadcast execution.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DecayParams {
    /// An upper bound `Δ` on the maximum degree (the paper allows any bound
    /// `Δ ≤ n − 1`; using the true maximum degree is always safe).
    pub max_degree: usize,
    /// Target failure probability `f` per receiver with a sending
    /// neighbour. The paper always uses `f = 1/poly(n)`.
    pub failure_prob: f64,
}

impl DecayParams {
    /// Conventional parameters: `Δ` = the graph's maximum degree and
    /// `f = n^{-3}`.
    pub fn for_network(n: usize, max_degree: usize) -> Self {
        let n = n.max(2) as f64;
        DecayParams {
            max_degree: max_degree.max(1),
            failure_prob: n.powi(-3),
        }
    }

    /// Weight-ratio-aware parameters (the paper's "other energy models"
    /// discussion): on a skewed radio — listen-heavy like `w4l1t` or
    /// transmit-heavy like `w1l4t` — every extra decay iteration costs the
    /// expensive side `⌈log₂ Δ⌉ + 1` weighted slots, so the conventional
    /// `f = n^{-3}` over-insures. This relaxes the failure exponent from
    /// `3` toward `3/ratio` (floored at `1.5`, still `1/poly(n)` and far
    /// below any per-call delivery the sweeps observe), cutting iterations
    /// — and therefore max weighted energy — roughly in proportion to the
    /// skew. On a uniform radio (`ratio = 1`) it is exactly
    /// [`DecayParams::for_network`], so tuning is a strict no-op where
    /// there is nothing to trade.
    pub fn for_energy_model(n: usize, max_degree: usize, model: crate::EnergyModel) -> Self {
        let ratio = match model {
            crate::EnergyModel::Uniform => 1.0,
            crate::EnergyModel::Weighted { listen, transmit } => {
                let (listen, transmit) = (listen.max(1) as f64, transmit.max(1) as f64);
                (listen.max(transmit)) / (listen.min(transmit))
            }
        };
        if ratio <= 1.0 {
            return DecayParams::for_network(n, max_degree);
        }
        let exponent = (3.0 / ratio).max(1.5);
        let n = n.max(2) as f64;
        DecayParams {
            max_degree: max_degree.max(1),
            failure_prob: n.powf(-exponent),
        }
    }

    /// Number of slots per decay iteration: `⌈log₂ Δ⌉ + 1` (at least 1), so
    /// that every sender-count in `[1, Δ]` has a matching slot.
    pub fn slots_per_iteration(&self) -> usize {
        ((self.max_degree.max(1) as f64).log2().ceil() as usize) + 1
    }

    /// Number of iterations: `⌈c · ln(1/f)⌉` with the constant calibrated to
    /// the constant per-iteration success probability of the decay step
    /// (each iteration succeeds with probability at least ≈ 1/(2e) for a
    /// receiver with a sending neighbour).
    pub fn iterations(&self) -> usize {
        let f = self.failure_prob.clamp(1e-18, 0.5);
        // Per-iteration success ≥ p0; need (1 - p0)^k ≤ f.
        let p0 = 0.18_f64;
        ((1.0 / f).ln() / (1.0 / (1.0 - p0)).ln()).ceil() as usize
    }

    /// Total number of slots one Local-Broadcast occupies.
    pub fn total_slots(&self) -> usize {
        self.slots_per_iteration() * self.iterations()
    }
}

/// Reusable per-slot buffers for [`decay_local_broadcast`]: the columnar
/// [`SlotFrame`] handed to the channel each slot, plus the per-iteration
/// slot schedule bucketed by slot number.
#[derive(Clone, Debug)]
pub struct DecayScratch<M> {
    slot: SlotFrame<M>,
    /// `buckets[t]` lists the senders that picked slot `t` this iteration,
    /// in ascending node order (bucket 0 is unused — slots are 1-based).
    /// Bucketing the schedule once per iteration lets each slot touch only
    /// its own transmitters instead of re-scanning every sender per slot.
    buckets: Vec<Vec<usize>>,
    /// CD variant only: senders that still have unresolved receivers nearby.
    active_senders: NodeSet,
    /// CD variant only: receivers that heard non-silence this iteration.
    heard_activity: NodeSet,
    /// Word-parallel workspace for listen/unresolved set computations.
    pending: NodeSet,
}

impl<M> DecayScratch<M> {
    /// Scratch buffers for a network of `n` devices.
    pub fn new(n: usize) -> Self {
        DecayScratch {
            slot: SlotFrame::new(n),
            buckets: Vec::new(),
            active_senders: NodeSet::new(n),
            heard_activity: NodeSet::new(n),
            pending: NodeSet::new(n),
        }
    }

    /// Clears the slot buckets for a new iteration with `levels` slots.
    fn reset_buckets(&mut self, levels: usize) {
        if self.buckets.len() <= levels {
            self.buckets.resize_with(levels + 1, Vec::new);
        }
        for bucket in &mut self.buckets[..=levels] {
            bucket.clear();
        }
    }
}

/// Samples the decay slot: `P(X = t) = 2^{−t}` for `t < L`, with the
/// remaining mass on `t = L` (so `P(X = t) ≥ 2^{−t}` for every `t ≤ L`,
/// matching the lemma's requirement).
pub fn sample_decay_slot<R: Rng + ?Sized>(levels: usize, rng: &mut R) -> usize {
    debug_assert!(levels >= 1);
    for t in 1..levels {
        if rng.gen_bool(0.5) {
            return t;
        }
    }
    levels
}

/// Executes one Local-Broadcast on the physical radio network.
///
/// `frame.senders()` maps each sender to its message; `frame.receivers()`
/// is the receiver set. The two sets should be disjoint (senders found in
/// the receiver set are ignored as receivers). Devices outside both sets
/// idle and spend no energy. Deliveries are written into
/// `frame.delivered()` (cleared on entry, first message heard wins);
/// returns the number of channel slots the call occupied.
pub fn decay_local_broadcast<M: Payload, R: Rng + ?Sized>(
    net: &mut RadioNetwork<M>,
    frame: &mut RoundFrame<M>,
    scratch: &mut DecayScratch<M>,
    params: DecayParams,
    rng: &mut R,
) -> u64 {
    assert_eq!(
        frame.num_nodes(),
        net.num_nodes(),
        "frame universe mismatch"
    );
    let levels = params.slots_per_iteration();
    let iterations = params.iterations();
    frame.clear_delivered();
    let (senders, receivers, delivered) = frame.parts_mut();
    let mut slots_used = 0u64;

    for _ in 0..iterations {
        // Each sender independently picks its transmission slot for this
        // iteration, in ascending node order (deterministic by
        // construction, no sort needed — the draw order is a pinned
        // contract), bucketed by slot so each slot below touches only its
        // own transmitters.
        scratch.reset_buckets(levels);
        for u in senders.keys().iter() {
            scratch.buckets[sample_decay_slot(levels, rng)].push(u);
        }
        for slot in 1..=levels {
            scratch.slot.clear();
            for &u in &scratch.buckets[slot] {
                scratch
                    .slot
                    .transmit
                    .insert(u, senders.get(u).expect("occupied sender").clone());
            }
            // Receivers that have already heard something sleep for the
            // rest of the call (Lemma 2.4's expected-energy saving):
            // listeners = receivers − delivered − senders, word-parallel.
            scratch.slot.listen.copy_from(receivers);
            scratch.slot.listen.difference_with(delivered.keys());
            scratch.slot.listen.difference_with(senders.keys());
            net.step_frame(&mut scratch.slot);
            slots_used += 1;
            for v in scratch.slot.received.iter() {
                if let Some(Feedback::Received(m)) = scratch.slot.feedback.get(v) {
                    delivered.insert_if_absent(v, m.clone());
                }
            }
        }
    }

    slots_used
}

/// The collision-detection-aware Local-Broadcast: Decay plus early
/// termination driven by receiver-side CD.
///
/// Requires the network to run with [`CollisionDetection::Receiver`]
/// (panics otherwise). Two observations turn CD feedback into energy and
/// time savings without weakening the Lemma 2.4 delivery guarantee:
///
/// 1. **Silent iteration ⇒ no sending neighbour.** Every sender transmits
///    in exactly one slot per iteration, so a receiver that hears
///    [`Feedback::Silence`] in *every* slot of one full iteration provably
///    has no active sending neighbour and sleeps for the rest of the call.
///    (Without CD it cannot distinguish silence from collisions and must
///    listen through all `O(log Δ · log f⁻¹)` slots.)
/// 2. **Echo slot ⇒ local sender termination.** Each iteration ends with
///    one extra slot in which every still-unresolved receiver transmits a
///    beacon and every active sender listens. A sender that hears silence
///    has no unresolved receiver left in its neighbourhood — the only
///    receivers it could ever serve — and retires. Once every sender has
///    retired the whole call ends. The echo costs each active sender one
///    listening slot and each unresolved receiver one transmission per
///    iteration, far below what the saved iterations would have cost.
///
/// The two rules interlock soundly: a sender only retires when no
/// *unresolved* neighbouring receiver remains, so an unresolved receiver
/// always keeps all of its sending neighbours active, and its silent-
/// iteration inference (rule 1) never fires spuriously.
///
/// Per-receiver verdicts are recorded in the frame's feedback lane:
/// [`LbFeedback::Delivered`], [`LbFeedback::Silence`] (no sending
/// neighbour), or [`LbFeedback::Noise`] (activity heard but nothing decoded
/// by the end of the call). Returns the number of channel slots used.
pub fn decay_local_broadcast_cd<M: Payload + Default, R: Rng + ?Sized>(
    net: &mut RadioNetwork<M>,
    frame: &mut RoundFrame<M>,
    scratch: &mut DecayScratch<M>,
    params: DecayParams,
    rng: &mut R,
) -> u64 {
    assert_eq!(
        frame.num_nodes(),
        net.num_nodes(),
        "frame universe mismatch"
    );
    assert_eq!(
        net.collision_detection(),
        CollisionDetection::Receiver,
        "decay_local_broadcast_cd requires receiver-side collision detection"
    );
    let levels = params.slots_per_iteration();
    let iterations = params.iterations();
    frame.clear_delivered();
    let (senders, receivers, delivered, feedback) = frame.parts_with_feedback_mut();
    let DecayScratch {
        slot,
        buckets,
        active_senders,
        heard_activity,
        pending,
    } = scratch;
    active_senders.clear();
    active_senders.extend(senders.keys().iter());
    let mut slots_used = 0u64;

    // The unresolved receivers — neither resolved with a verdict nor
    // senders — recomputed word-parallel into the `pending` scratch set
    // wherever the call needs them (the feedback lane doubles as the
    // resolved set, since every resolution records a verdict).
    macro_rules! unresolved_into_pending {
        () => {{
            pending.copy_from(receivers);
            pending.difference_with(feedback.keys());
            pending.difference_with(senders.keys());
        }};
    }

    for _ in 0..iterations {
        // Stop once every sender has retired AND every receiver is
        // resolved. A sender-less call with unresolved receivers still runs
        // one all-silent iteration, so those receivers earn an honest
        // `Silence` verdict by listening — matching the abstract CD
        // backend's verdict for the same call — rather than being
        // misreported as `Noise` by the fallback below.
        unresolved_into_pending!();
        if active_senders.is_empty() && pending.is_empty() {
            break;
        }
        // Active senders draw their slots in ascending node order; the
        // active set evolves deterministically, so the RNG stream maps to
        // devices reproducibly (the draw order is a pinned contract).
        if buckets.len() <= levels {
            buckets.resize_with(levels + 1, Vec::new);
        }
        for bucket in &mut buckets[..=levels] {
            bucket.clear();
        }
        for u in active_senders.iter() {
            buckets[sample_decay_slot(levels, rng)].push(u);
        }
        heard_activity.clear();
        for bucket in buckets.iter().take(levels + 1).skip(1) {
            slot.clear();
            for &u in bucket {
                slot.transmit
                    .insert(u, senders.get(u).expect("occupied sender").clone());
            }
            // A receiver listens while unresolved.
            unresolved_into_pending!();
            slot.listen.copy_from(pending);
            net.step_frame(slot);
            slots_used += 1;
            for (v, fb) in slot.feedback.iter() {
                match fb {
                    Feedback::Received(m) => {
                        delivered.insert_if_absent(v, m.clone());
                        feedback.insert(v, LbFeedback::Delivered);
                        heard_activity.insert(v);
                    }
                    Feedback::Noise => {
                        heard_activity.insert(v);
                    }
                    Feedback::Silence | Feedback::Nothing => {}
                }
            }
        }
        // Rule 1: an unresolved receiver that heard silence in every slot of
        // this iteration has no active sending neighbour — and since senders
        // only retire once all their neighbouring receivers are resolved, no
        // sending neighbour at all. Set form: unresolved − heard_activity.
        unresolved_into_pending!();
        pending.difference_with(heard_activity);
        for v in pending.iter() {
            feedback.insert(v, LbFeedback::Silence);
        }
        // Rule 2 (echo slot): unresolved receivers beacon, active senders
        // listen; silence retires the sender. With no senders left to
        // retire the slot would be pure dead air — skip it.
        if active_senders.is_empty() {
            continue;
        }
        slot.clear();
        unresolved_into_pending!();
        for v in pending.iter() {
            slot.transmit.insert(v, M::default());
        }
        slot.listen.copy_from(active_senders);
        net.step_frame(slot);
        slots_used += 1;
        for (u, fb) in slot.feedback.iter() {
            if matches!(fb, Feedback::Silence) {
                active_senders.remove(u);
            }
        }
    }

    // Receivers still unresolved after all iterations heard activity they
    // could never decode (persistent collisions — a 1/poly(n) tail event).
    unresolved_into_pending!();
    for v in pending.iter() {
        feedback.insert(v, LbFeedback::Noise);
    }

    slots_used
}

/// Convenience for tests and one-off calls: runs [`decay_local_broadcast`]
/// with freshly allocated frame and scratch, returning the delivery arena
/// and the slots used. Hot paths should hold their own frame/scratch and
/// call [`decay_local_broadcast`] directly.
pub fn decay_local_broadcast_once<M: Payload, R: Rng + ?Sized>(
    net: &mut RadioNetwork<M>,
    senders: &[(NodeId, M)],
    receivers: &[NodeId],
    params: DecayParams,
    rng: &mut R,
) -> (crate::frame::NodeSlots<M>, u64) {
    let mut frame = RoundFrame::new(net.num_nodes());
    let mut scratch = DecayScratch::new(net.num_nodes());
    for (v, m) in senders {
        frame.add_sender(*v, m.clone());
    }
    for &v in receivers {
        frame.add_receiver(v);
    }
    let slots = decay_local_broadcast(net, &mut frame, &mut scratch, params, rng);
    let mut out = crate::frame::NodeSlots::new(net.num_nodes());
    frame.swap_delivered(&mut out);
    (out, slots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn decay_slot_distribution_is_geometric_ish() {
        let mut r = rng(1);
        let levels = 6;
        let k = 60_000;
        let mut counts = vec![0usize; levels + 1];
        for _ in 0..k {
            counts[sample_decay_slot(levels, &mut r)] += 1;
        }
        // P(1) ≈ 1/2, P(2) ≈ 1/4, and P(t) ≥ 2^-t for all t.
        assert!((counts[1] as f64 / k as f64 - 0.5).abs() < 0.02);
        assert!((counts[2] as f64 / k as f64 - 0.25).abs() < 0.02);
        for (t, &count) in counts.iter().enumerate().take(levels + 1).skip(1) {
            let p = count as f64 / k as f64;
            assert!(p >= 0.9 * 2f64.powi(-(t as i32)), "slot {t} too rare: {p}");
        }
    }

    #[test]
    fn single_sender_single_receiver_always_delivers() {
        let g = generators::path(2);
        let mut r = rng(2);
        let mut net: RadioNetwork<u64> = RadioNetwork::new(g);
        let params = DecayParams::for_network(2, 1);
        let (out, _) = decay_local_broadcast_once(&mut net, &[(0, 99u64)], &[1], params, &mut r);
        assert_eq!(out.get(1), Some(&99));
    }

    #[test]
    fn receiver_with_no_sending_neighbor_hears_nothing_and_pays_full_price() {
        // Path 0-1-2-3: sender 0, receivers {1, 3}. Vertex 3 is not adjacent
        // to 0, hears nothing, and listens for every slot.
        let g = generators::path(4);
        let mut r = rng(3);
        let mut net: RadioNetwork<u64> = RadioNetwork::new(g);
        let params = DecayParams {
            max_degree: 2,
            failure_prob: 1e-6,
        };
        let (out, _) = decay_local_broadcast_once(&mut net, &[(0, 7u64)], &[1, 3], params, &mut r);
        assert_eq!(out.get(1), Some(&7));
        assert_eq!(out.get(3), None);
        assert_eq!(net.energy(3), params.total_slots() as u64);
        // The successful receiver stops early: strictly less energy than the
        // hopeless one (with overwhelming probability for these many slots).
        assert!(net.energy(1) < net.energy(3));
        // Sender energy is exactly one transmission per iteration.
        assert_eq!(net.energy(0), params.iterations() as u64);
        // Idle vertex 2 pays nothing.
        assert_eq!(net.energy(2), 0);
    }

    #[test]
    fn many_senders_still_deliver_to_hub_whp() {
        // Star: all leaves send, the hub must hear at least one despite
        // collisions. Repeat over several seeds, reusing one frame and one
        // scratch across all runs (the reuse discipline hot paths follow).
        let n = 65;
        let g = generators::star(n);
        let params = DecayParams::for_network(n, n - 1);
        let mut frame: RoundFrame<u64> = RoundFrame::new(n);
        let mut scratch: DecayScratch<u64> = DecayScratch::new(n);
        let mut failures = 0;
        for seed in 0..20 {
            let mut r = rng(100 + seed);
            let mut net: RadioNetwork<u64> = RadioNetwork::new(g.clone());
            frame.clear();
            for v in 1..n {
                frame.add_sender(v, v as u64);
            }
            frame.add_receiver(0);
            decay_local_broadcast(&mut net, &mut frame, &mut scratch, params, &mut r);
            if !frame.delivered().contains(0) {
                failures += 1;
            }
        }
        assert_eq!(failures, 0, "local broadcast failed under contention");
    }

    #[test]
    fn slots_used_matches_parameter_formula() {
        let g = generators::path(3);
        let mut r = rng(5);
        let mut net: RadioNetwork<u64> = RadioNetwork::new(g);
        let params = DecayParams {
            max_degree: 4,
            failure_prob: 1e-4,
        };
        let (_, slots) = decay_local_broadcast_once(&mut net, &[(0, 1u64)], &[1], params, &mut r);
        assert_eq!(slots, params.total_slots() as u64);
        assert_eq!(net.slots(), params.total_slots() as u64);
    }

    #[test]
    fn sender_energy_is_logarithmic_in_failure_probability() {
        let cheap = DecayParams {
            max_degree: 8,
            failure_prob: 1e-2,
        };
        let strict = DecayParams {
            max_degree: 8,
            failure_prob: 1e-8,
        };
        assert!(strict.iterations() > cheap.iterations());
        // Growth should be roughly 4x (log-linear), certainly not 100x.
        assert!(strict.iterations() < 8 * cheap.iterations());
    }

    #[test]
    fn disjoint_sender_receiver_components_do_not_interact() {
        let g = radio_graph::Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let mut r = rng(6);
        let mut net: RadioNetwork<u64> = RadioNetwork::new(g);
        let params = DecayParams::for_network(4, 1);
        let (out, _) = decay_local_broadcast_once(&mut net, &[(0, 5u64)], &[3], params, &mut r);
        assert!(out.is_empty());
    }

    fn cd_net(g: radio_graph::Graph) -> RadioNetwork<u64> {
        RadioNetwork::new(g).with_collision_detection(crate::model::CollisionDetection::Receiver)
    }

    #[test]
    #[should_panic]
    fn cd_variant_rejects_networks_without_collision_detection() {
        let g = generators::path(2);
        let mut r = rng(1);
        let mut net: RadioNetwork<u64> = RadioNetwork::new(g);
        let mut frame = RoundFrame::new(2);
        let mut scratch = DecayScratch::new(2);
        frame.add_sender(0, 1u64);
        frame.add_receiver(1);
        decay_local_broadcast_cd(
            &mut net,
            &mut frame,
            &mut scratch,
            DecayParams::for_network(2, 1),
            &mut r,
        );
    }

    #[test]
    fn cd_variant_delivers_and_records_verdicts() {
        // Path 0-1-2-3, sender 0, receivers {1, 3}: 1 is delivered to, 3
        // provably has no sending neighbour.
        let g = generators::path(4);
        let mut r = rng(2);
        let mut net = cd_net(g);
        let params = DecayParams {
            max_degree: 2,
            failure_prob: 1e-6,
        };
        let mut frame: RoundFrame<u64> = RoundFrame::new(4);
        let mut scratch: DecayScratch<u64> = DecayScratch::new(4);
        frame.add_sender(0, 7u64);
        frame.add_receiver(1);
        frame.add_receiver(3);
        decay_local_broadcast_cd(&mut net, &mut frame, &mut scratch, params, &mut r);
        assert_eq!(frame.delivered().get(1), Some(&7));
        assert_eq!(frame.feedback().get(1), Some(&LbFeedback::Delivered));
        assert_eq!(frame.delivered().get(3), None);
        assert_eq!(frame.feedback().get(3), Some(&LbFeedback::Silence));
    }

    #[test]
    fn cd_hopeless_receiver_pays_one_iteration_instead_of_all() {
        // The headline saving: without CD a receiver with no sending
        // neighbour listens through every slot; with CD it resolves Silence
        // after one iteration and sleeps.
        let g = generators::path(4);
        let params = DecayParams {
            max_degree: 2,
            failure_prob: 1e-9,
        };
        let mut r1 = rng(3);
        let mut plain: RadioNetwork<u64> = RadioNetwork::new(g.clone());
        let (_, plain_slots) =
            decay_local_broadcast_once(&mut plain, &[(0, 7u64)], &[1, 3], params, &mut r1);
        let mut r2 = rng(3);
        let mut cd = cd_net(g);
        let mut frame: RoundFrame<u64> = RoundFrame::new(4);
        let mut scratch: DecayScratch<u64> = DecayScratch::new(4);
        frame.add_sender(0, 7u64);
        frame.add_receiver(1);
        frame.add_receiver(3);
        let cd_slots = decay_local_broadcast_cd(&mut cd, &mut frame, &mut scratch, params, &mut r2);
        assert_eq!(plain.energy(3), params.total_slots() as u64);
        // One iteration of listening, then provable silence; no echo beacons
        // (the receiver resolves before the first echo slot).
        assert_eq!(
            cd.energy(3),
            params.slots_per_iteration() as u64,
            "hopeless receiver should resolve after one iteration"
        );
        assert!(cd.energy(3) < plain.energy(3));
        // Early global termination: the sender retires once receiver 1 is
        // delivered and receiver 3 has gone silent.
        assert!(cd_slots < plain_slots, "{cd_slots} vs {plain_slots}");
        assert!(cd.max_energy() < plain.max_energy());
    }

    #[test]
    fn cd_variant_still_delivers_under_contention() {
        // All leaves of a star send; the hub must still hear one despite
        // collisions, across seeds — CD must not weaken Lemma 2.4.
        let n = 65;
        let g = generators::star(n);
        let params = DecayParams::for_network(n, n - 1);
        let mut frame: RoundFrame<u64> = RoundFrame::new(n);
        let mut scratch: DecayScratch<u64> = DecayScratch::new(n);
        for seed in 0..20 {
            let mut r = rng(500 + seed);
            let mut net = cd_net(g.clone());
            frame.clear();
            for v in 1..n {
                frame.add_sender(v, v as u64);
            }
            frame.add_receiver(0);
            decay_local_broadcast_cd(&mut net, &mut frame, &mut scratch, params, &mut r);
            assert!(
                frame.delivered().contains(0),
                "CD local broadcast failed under contention (seed {seed})"
            );
            assert_eq!(frame.feedback().get(0), Some(&LbFeedback::Delivered));
        }
    }

    #[test]
    fn cd_call_with_no_senders_yields_silence_not_noise() {
        // Regression: a sender-less call must still run one listening
        // iteration so receivers earn a provable `Silence` verdict (the
        // abstract CD backend's verdict for the same call), not the
        // leftover-`Noise` fallback.
        let g = generators::path(3);
        let mut r = rng(12);
        let mut net = cd_net(g);
        let params = DecayParams {
            max_degree: 2,
            failure_prob: 1e-6,
        };
        let mut frame: RoundFrame<u64> = RoundFrame::new(3);
        let mut scratch: DecayScratch<u64> = DecayScratch::new(3);
        frame.add_receiver(0);
        frame.add_receiver(2);
        let slots = decay_local_broadcast_cd(&mut net, &mut frame, &mut scratch, params, &mut r);
        assert!(frame.delivered().is_empty());
        assert_eq!(frame.feedback().get(0), Some(&LbFeedback::Silence));
        assert_eq!(frame.feedback().get(2), Some(&LbFeedback::Silence));
        // Exactly one all-silent iteration of listening, no echo slot.
        assert_eq!(slots, params.slots_per_iteration() as u64);
        assert_eq!(net.energy(0), params.slots_per_iteration() as u64);
        // A call with neither senders nor receivers costs nothing.
        frame.clear();
        let slots = decay_local_broadcast_cd(&mut net, &mut frame, &mut scratch, params, &mut r);
        assert_eq!(slots, 0);
    }

    #[test]
    fn cd_call_with_no_receivers_terminates_after_one_iteration() {
        let g = generators::path(3);
        let mut r = rng(9);
        let mut net = cd_net(g);
        let params = DecayParams {
            max_degree: 2,
            failure_prob: 1e-9,
        };
        let mut frame: RoundFrame<u64> = RoundFrame::new(3);
        let mut scratch: DecayScratch<u64> = DecayScratch::new(3);
        frame.add_sender(0, 1u64);
        let slots = decay_local_broadcast_cd(&mut net, &mut frame, &mut scratch, params, &mut r);
        // One full iteration plus its echo slot, then every sender retires.
        assert_eq!(slots, params.slots_per_iteration() as u64 + 1);
    }

    #[test]
    fn reused_frame_does_not_leak_previous_deliveries() {
        // Call once with a delivering sender, then reuse the same frame for
        // a hopeless receiver: the old delivery must not survive.
        let g = generators::path(4);
        let mut r = rng(7);
        let mut net: RadioNetwork<u64> = RadioNetwork::new(g);
        let params = DecayParams::for_network(4, 2);
        let mut frame: RoundFrame<u64> = RoundFrame::new(4);
        let mut scratch: DecayScratch<u64> = DecayScratch::new(4);
        frame.add_sender(0, 9);
        frame.add_receiver(1);
        decay_local_broadcast(&mut net, &mut frame, &mut scratch, params, &mut r);
        assert_eq!(frame.delivered().get(1), Some(&9));
        frame.clear();
        frame.add_sender(0, 9);
        frame.add_receiver(3);
        decay_local_broadcast(&mut net, &mut frame, &mut scratch, params, &mut r);
        assert!(frame.delivered().is_empty());
    }

    #[test]
    fn energy_model_tuning_cuts_slots_on_skewed_radios_only() {
        use crate::EnergyModel;
        let (n, delta) = (256usize, 4usize);
        let blind = DecayParams::for_network(n, delta);
        // Uniform radio: tuning is the identity.
        assert_eq!(
            DecayParams::for_energy_model(n, delta, EnergyModel::Uniform),
            blind
        );
        assert_eq!(
            DecayParams::for_energy_model(
                n,
                delta,
                EnergyModel::Weighted {
                    listen: 2,
                    transmit: 2
                }
            ),
            blind
        );
        // Skewed radios (either direction) relax the failure exponent and
        // shorten the call; more skew, shorter.
        let listen_heavy = DecayParams::for_energy_model(
            n,
            delta,
            EnergyModel::Weighted {
                listen: 4,
                transmit: 1,
            },
        );
        let transmit_heavy = DecayParams::for_energy_model(
            n,
            delta,
            EnergyModel::Weighted {
                listen: 1,
                transmit: 4,
            },
        );
        assert_eq!(listen_heavy, transmit_heavy, "ratio is direction-blind");
        assert!(listen_heavy.failure_prob > blind.failure_prob);
        assert!(listen_heavy.total_slots() < blind.total_slots());
        let extreme = DecayParams::for_energy_model(
            n,
            delta,
            EnergyModel::Weighted {
                listen: 1,
                transmit: 100,
            },
        );
        assert!(extreme.total_slots() <= listen_heavy.total_slots());
        // The exponent floor keeps failures 1/poly(n).
        assert!(extreme.failure_prob <= (n as f64).powf(-1.5) * 1.0001);
    }

    #[test]
    fn tuned_params_still_deliver_on_a_star() {
        use crate::EnergyModel;
        let n = 64;
        let g = generators::star(n);
        let params = DecayParams {
            max_degree: n - 1,
            ..DecayParams::for_energy_model(
                n,
                n - 1,
                EnergyModel::Weighted {
                    listen: 4,
                    transmit: 1,
                },
            )
        };
        let mut r = rng(9);
        let mut delivered = 0usize;
        let trials = 30;
        let mut frame: RoundFrame<u64> = RoundFrame::new(n);
        let mut scratch: DecayScratch<u64> = DecayScratch::new(n);
        for _ in 0..trials {
            let mut net: RadioNetwork<u64> = RadioNetwork::new(g.clone());
            frame.clear();
            for v in 1..n {
                frame.add_sender(v, v as u64);
            }
            frame.add_receiver(0);
            decay_local_broadcast(&mut net, &mut frame, &mut scratch, params, &mut r);
            delivered += usize::from(frame.delivered().contains(0));
        }
        assert_eq!(delivered, trials, "shorter calls must still deliver whp");
    }
}
