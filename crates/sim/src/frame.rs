//! Dense, reusable round-frame data structures.
//!
//! Every protocol in this repository is a sequence of rounds in which a
//! *sparse subset* of a *fixed universe* of nodes acts. Representing those
//! subsets as `HashMap`/`HashSet` (as the seed did) costs an allocation and
//! a hash per participant per round, and — because hash iteration order is
//! randomized per process — forces every consumer that draws from a seeded
//! RNG to sort the keys first to stay deterministic.
//!
//! The types here make determinism a *structural* property instead:
//!
//! * [`NodeSet`] — a dense bitset over `0..n` whose iterator is ascending
//!   by construction. No sort is ever needed.
//! * [`NodeSlots<T>`] — a slot-indexed arena `node → T` backed by a
//!   `Vec<Option<T>>` plus a [`NodeSet`] occupancy index, so membership is
//!   one bit-test and iteration is ascending.
//! * [`RoundFrame<M>`] — one Local-Broadcast-shaped round: senders (with
//!   their messages), receivers, and the delivered output, all reusable
//!   across calls via [`RoundFrame::clear`] (clearing touches only the
//!   previously occupied entries, so a sparse round on a large universe
//!   stays cheap).
//! * [`SlotFrame<M>`] — one physical channel slot: transmitters, listeners,
//!   and per-listener feedback, used by the columnar
//!   [`RadioNetwork::step_frame`](crate::network::RadioNetwork::step_frame).

use crate::model::{Feedback, LbFeedback};

/// A dense set of node identifiers over a fixed universe `0..n`.
///
/// Insert, remove and membership are `O(1)`; iteration is ascending by
/// construction. An *occupied-word watermark* tracks one past the highest
/// `u64` block that may hold a set bit, so [`NodeSet::clear`] and the word
/// loops only touch the prefix a sparse set actually uses, and a sparse
/// round on a large universe stays cheap.
///
/// The bulk kernels ([`NodeSet::union_with`], [`NodeSet::intersect_with`],
/// [`NodeSet::difference_with`], [`NodeSet::copy_from`],
/// [`NodeSet::is_disjoint`], [`NodeSet::count_intersection`]) are written
/// as straight-line loops over `u64` blocks — 64 membership decisions per
/// iteration, autovectorizer-friendly — with `len` recomputed exactly by
/// `count_ones` accumulation. Raw word access for external kernels is
/// available through [`NodeSet::words`] / [`NodeSet::words_mut`] +
/// [`NodeSet::recount`].
///
/// # Out-of-universe ids
///
/// The mutating and querying entry points deliberately differ on ids
/// `v >= universe`: [`NodeSet::insert`] **panics** (an out-of-universe
/// insert is always a logic error — the bit has nowhere to live), while
/// [`NodeSet::remove`] and [`NodeSet::contains`] tolerate them (removing a
/// non-member is a no-op and an out-of-universe id is never a member, so
/// both have a sensible total answer). Frame-reuse call sites that probe
/// speculatively can use [`NodeSet::try_insert`] instead of pre-checking.
#[derive(Clone, Debug, Default)]
pub struct NodeSet {
    words: Vec<u64>,
    universe: usize,
    len: usize,
    /// One past the highest word index that may hold a set bit; words at
    /// `hi..` are all zero. Grows on insert, resets on clear, and is *not*
    /// shrunk by remove — it is a conservative bound, not an exact one.
    hi: usize,
}

/// Equality is semantic — same universe, same members. The occupied-word
/// watermark is bookkeeping (two equal sets may carry different watermarks
/// after different insert/remove histories), so `PartialEq` is implemented
/// by hand over `universe` and the words rather than derived.
impl PartialEq for NodeSet {
    fn eq(&self, other: &Self) -> bool {
        self.universe == other.universe && self.len == other.len && self.words == other.words
    }
}

impl Eq for NodeSet {}

impl NodeSet {
    /// An empty set over the universe `0..n`.
    pub fn new(n: usize) -> Self {
        NodeSet {
            words: vec![0; n.div_ceil(64)],
            universe: n,
            len: 0,
            hi: 0,
        }
    }

    /// Size of the universe this set ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every member. `O(watermark)`: only the word prefix that may
    /// hold bits is zeroed, so clearing a sparse set over a big universe
    /// costs proportional to what was actually occupied.
    pub fn clear(&mut self) {
        self.words[..self.hi].fill(0);
        self.hi = 0;
        self.len = 0;
    }

    /// Inserts `v`; returns `true` if it was not already present.
    ///
    /// Panics if `v` is outside the universe (see the type-level note on
    /// out-of-universe ids; use [`NodeSet::try_insert`] to probe instead).
    pub fn insert(&mut self, v: usize) -> bool {
        assert!(
            v < self.universe,
            "node {v} outside universe {}",
            self.universe
        );
        let (w, b) = (v / 64, 1u64 << (v % 64));
        let fresh = self.words[w] & b == 0;
        self.words[w] |= b;
        self.len += usize::from(fresh);
        if w >= self.hi {
            self.hi = w + 1;
        }
        fresh
    }

    /// Non-panicking [`NodeSet::insert`]: returns `true` iff `v` is inside
    /// the universe *and* was not already present. Out-of-universe ids are
    /// ignored (mirroring how [`NodeSet::remove`] / [`NodeSet::contains`]
    /// treat them), which is the shape speculative frame-reuse call sites
    /// want.
    pub fn try_insert(&mut self, v: usize) -> bool {
        if v >= self.universe {
            return false;
        }
        self.insert(v)
    }

    /// Removes `v`; returns `true` if it was present. Out-of-universe ids
    /// are tolerated (never members, so removal is a no-op).
    pub fn remove(&mut self, v: usize) -> bool {
        if v >= self.universe {
            return false;
        }
        let (w, b) = (v / 64, 1u64 << (v % 64));
        let present = self.words[w] & b != 0;
        self.words[w] &= !b;
        self.len -= usize::from(present);
        present
    }

    /// Membership test. `O(1)`; out-of-universe ids are never members.
    pub fn contains(&self, v: usize) -> bool {
        v < self.universe && self.words[v / 64] & (1u64 << (v % 64)) != 0
    }

    /// Iterates the members in ascending order. `O(watermark + |set|)`.
    pub fn iter(&self) -> NodeSetIter<'_> {
        let words = &self.words[..self.hi];
        NodeSetIter {
            words,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }

    /// Inserts every id produced by `iter`.
    pub fn extend(&mut self, iter: impl IntoIterator<Item = usize>) {
        for v in iter {
            self.insert(v);
        }
    }

    /// One past the highest word index that may hold a set bit. Words at
    /// `watermark()..` of [`NodeSet::words`] are guaranteed zero, so word
    /// loops over `words()[..watermark()]` see every member.
    pub fn watermark(&self) -> usize {
        self.hi
    }

    /// The raw backing words, least-significant bit of word `w` = node
    /// `64 * w`. The slice always has `universe.div_ceil(64)` words; those
    /// at [`NodeSet::watermark`] and beyond are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable raw word access for external word-at-a-time kernels.
    ///
    /// After writing through this slice the cached `len` and watermark are
    /// stale — call [`NodeSet::recount`] before using any other method.
    /// Callers must not set bits at `universe` or beyond.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Recomputes `len` and the watermark from the raw words after a
    /// [`NodeSet::words_mut`] edit. `O(n/64)`.
    pub fn recount(&mut self) {
        debug_assert!(
            self.universe.is_multiple_of(64)
                || self
                    .words
                    .last()
                    .is_none_or(|&w| w >> (self.universe % 64) == 0),
            "bit set beyond universe {}",
            self.universe
        );
        let mut len = 0usize;
        let mut hi = 0usize;
        for (i, &w) in self.words.iter().enumerate() {
            len += w.count_ones() as usize;
            if w != 0 {
                hi = i + 1;
            }
        }
        self.len = len;
        self.hi = hi;
    }

    /// Makes this set a copy of `other` (same universe required) without
    /// reallocating. `O(max(watermarks))`.
    pub fn copy_from(&mut self, other: &NodeSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        // Copying up to the larger watermark overwrites any stale words of
        // `self` with `other`'s zeros, so no separate clear is needed.
        let m = self.hi.max(other.hi);
        self.words[..m].copy_from_slice(&other.words[..m]);
        self.len = other.len;
        self.hi = other.hi;
    }

    /// `self |= other` (same universe required), word-parallel; `len` is
    /// recomputed exactly via `count_ones` accumulation.
    pub fn union_with(&mut self, other: &NodeSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let m = self.hi.max(other.hi);
        let mut len = 0usize;
        for (a, &b) in self.words[..m].iter_mut().zip(&other.words[..m]) {
            let w = *a | b;
            *a = w;
            len += w.count_ones() as usize;
        }
        self.len = len;
        self.hi = m;
    }

    /// `self &= other` (same universe required), word-parallel.
    pub fn intersect_with(&mut self, other: &NodeSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        // Words at self.hi.. are already zero; intersecting can only clear
        // bits, so the watermark stays valid and the loop stops there.
        let m = self.hi;
        let mut len = 0usize;
        for (a, &b) in self.words[..m].iter_mut().zip(&other.words[..m]) {
            let w = *a & b;
            *a = w;
            len += w.count_ones() as usize;
        }
        self.len = len;
    }

    /// `self -= other` (same universe required), word-parallel.
    pub fn difference_with(&mut self, other: &NodeSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let m = self.hi;
        let mut len = 0usize;
        for (a, &b) in self.words[..m].iter_mut().zip(&other.words[..m]) {
            let w = *a & !b;
            *a = w;
            len += w.count_ones() as usize;
        }
        self.len = len;
    }

    /// `true` iff the sets share no member (same universe required).
    /// Word-parallel with early exit on the first shared word.
    pub fn is_disjoint(&self, other: &NodeSet) -> bool {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let m = self.hi.min(other.hi);
        self.words[..m]
            .iter()
            .zip(&other.words[..m])
            .all(|(&a, &b)| a & b == 0)
    }

    /// `|self & other|` without materialising the intersection (same
    /// universe required), word-parallel `count_ones` accumulation.
    pub fn count_intersection(&self, other: &NodeSet) -> usize {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let m = self.hi.min(other.hi);
        self.words[..m]
            .iter()
            .zip(&other.words[..m])
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = usize;
    type IntoIter = NodeSetIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Ascending iterator over a [`NodeSet`].
pub struct NodeSetIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for NodeSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * 64 + bit)
    }
}

/// A slot-indexed arena mapping node ids to values, with a [`NodeSet`]
/// occupancy index.
///
/// This is the dense replacement for `HashMap<usize, T>` in per-round
/// message plumbing: `O(1)` unhashed insert/lookup, ascending iteration by
/// construction, and `clear` touches only the occupied slots (so reuse
/// across sparse rounds is cheap even over a large universe).
#[derive(Clone, Debug)]
pub struct NodeSlots<T> {
    slots: Vec<Option<T>>,
    occupied: NodeSet,
}

impl<T> NodeSlots<T> {
    /// An empty arena over the universe `0..n`.
    pub fn new(n: usize) -> Self {
        NodeSlots {
            slots: (0..n).map(|_| None).collect(),
            occupied: NodeSet::new(n),
        }
    }

    /// Size of the universe.
    pub fn universe(&self) -> usize {
        self.occupied.universe()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.occupied.len()
    }

    /// `true` if no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.occupied.is_empty()
    }

    /// Removes every entry, touching only the occupied slots.
    pub fn clear(&mut self) {
        // Drop values via the occupancy index rather than scanning all n
        // slots: sparse rounds over big universes stay O(|occupied|).
        let slots = &mut self.slots;
        for v in self.occupied.iter() {
            slots[v] = None;
        }
        self.occupied.clear();
    }

    /// Inserts `value` at node `v`, replacing any previous value.
    pub fn insert(&mut self, v: usize, value: T) {
        self.slots[v] = Some(value);
        self.occupied.insert(v);
    }

    /// Inserts only if `v` is unoccupied (first-write-wins semantics, the
    /// shape every delivery loop in this repository wants).
    pub fn insert_if_absent(&mut self, v: usize, value: T) {
        if !self.occupied.contains(v) {
            self.insert(v, value);
        }
    }

    /// The value at node `v`, if any.
    pub fn get(&self, v: usize) -> Option<&T> {
        self.slots.get(v).and_then(|s| s.as_ref())
    }

    /// Membership test: `O(1)` against the occupancy bitset.
    pub fn contains(&self, v: usize) -> bool {
        self.occupied.contains(v)
    }

    /// The occupancy index (e.g. to iterate keys only).
    pub fn keys(&self) -> &NodeSet {
        &self.occupied
    }

    /// Iterates `(node, &value)` in ascending node order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> + '_ {
        self.occupied
            .iter()
            .map(|v| (v, self.slots[v].as_ref().expect("occupied slot")))
    }
}

/// One Local-Broadcast-shaped round over a fixed universe of nodes:
/// senders (each with a message), receivers, and the delivered output.
///
/// The frame is the unit of reuse: allocate it once per network (e.g. via
/// `RadioStack::new_frame` in `radio-protocols`), then `clear`/fill/call for
/// every round. Backends write deliveries through [`RoundFrame::parts_mut`],
/// which splits the frame into disjoint input/output borrows.
#[derive(Clone, Debug)]
pub struct RoundFrame<M> {
    senders: NodeSlots<M>,
    receivers: NodeSet,
    delivered: NodeSlots<M>,
    feedback: NodeSlots<LbFeedback>,
}

impl<M> RoundFrame<M> {
    /// An empty frame over the universe `0..n`.
    pub fn new(n: usize) -> Self {
        RoundFrame {
            senders: NodeSlots::new(n),
            receivers: NodeSet::new(n),
            delivered: NodeSlots::new(n),
            feedback: NodeSlots::new(n),
        }
    }

    /// Size of the node universe this frame ranges over.
    pub fn num_nodes(&self) -> usize {
        self.receivers.universe()
    }

    /// Clears senders, receivers, deliveries and feedback for reuse.
    pub fn clear(&mut self) {
        self.senders.clear();
        self.receivers.clear();
        self.delivered.clear();
        self.feedback.clear();
    }

    /// Registers `v` as a sender holding `m`.
    pub fn add_sender(&mut self, v: usize, m: M) {
        self.senders.insert(v, m);
    }

    /// Registers `v` as a receiver.
    pub fn add_receiver(&mut self, v: usize) {
        self.receivers.insert(v);
    }

    /// Replaces the receiver set with a copy of `set` (same universe
    /// required) — the word-parallel bulk form of [`RoundFrame::add_receiver`]
    /// for drivers that already track their listening frontier as a
    /// [`NodeSet`].
    pub fn set_receivers(&mut self, set: &NodeSet) {
        self.receivers.copy_from(set);
    }

    /// The sender arena.
    pub fn senders(&self) -> &NodeSlots<M> {
        &self.senders
    }

    /// The receiver set.
    pub fn receivers(&self) -> &NodeSet {
        &self.receivers
    }

    /// The messages delivered by the last call executed on this frame.
    pub fn delivered(&self) -> &NodeSlots<M> {
        &self.delivered
    }

    /// Per-receiver channel verdicts of the last call, populated only by
    /// collision-detection-capable backends (empty otherwise). A receiver
    /// holding [`LbFeedback::Silence`] learned that it has no sending
    /// neighbour — the signal CD-aware protocols branch on.
    pub fn feedback(&self) -> &NodeSlots<LbFeedback> {
        &self.feedback
    }

    /// Splits the frame into `(senders, receivers, delivered)` with the
    /// output mutably borrowed — the shape every backend needs to read the
    /// inputs while recording deliveries.
    pub fn parts_mut(&mut self) -> (&NodeSlots<M>, &NodeSet, &mut NodeSlots<M>) {
        (&self.senders, &self.receivers, &mut self.delivered)
    }

    /// Like [`RoundFrame::parts_mut`], additionally borrowing the feedback
    /// lane mutably — the shape collision-detection-capable backends need to
    /// record per-receiver verdicts alongside deliveries.
    pub fn parts_with_feedback_mut(
        &mut self,
    ) -> (
        &NodeSlots<M>,
        &NodeSet,
        &mut NodeSlots<M>,
        &mut NodeSlots<LbFeedback>,
    ) {
        (
            &self.senders,
            &self.receivers,
            &mut self.delivered,
            &mut self.feedback,
        )
    }

    /// Clears only the per-call outputs — deliveries and feedback (backends
    /// call this on entry so a reused frame never leaks the previous round's
    /// results).
    pub fn clear_delivered(&mut self) {
        self.delivered.clear();
        self.feedback.clear();
    }

    /// Swaps the delivery arena with `other` (same universe required), e.g.
    /// to hold on to one round's output while the frame is reused for the
    /// next round without cloning messages.
    pub fn swap_delivered(&mut self, other: &mut NodeSlots<M>) {
        assert_eq!(other.universe(), self.delivered.universe());
        std::mem::swap(&mut self.delivered, other);
    }

    /// Replaces the delivery arena wholesale (same universe required).
    pub fn replace_delivered(&mut self, delivered: NodeSlots<M>) {
        assert_eq!(delivered.universe(), self.receivers.universe());
        self.delivered = delivered;
    }
}

/// One physical channel slot in columnar form: who transmits (with the
/// payload), who listens, and — after
/// [`RadioNetwork::step_frame`](crate::network::RadioNetwork::step_frame) —
/// what each listener heard.
#[derive(Clone, Debug)]
pub struct SlotFrame<M> {
    /// Transmitters and their payloads.
    pub transmit: NodeSlots<M>,
    /// Listeners.
    pub listen: NodeSet,
    /// Per-listener feedback (filled by the network).
    pub feedback: NodeSlots<Feedback<M>>,
    /// The listeners whose feedback is [`Feedback::Received`] (filled by the
    /// network alongside `feedback`), so harvest loops walk only the
    /// deliveries instead of re-classifying every listener.
    pub received: NodeSet,
}

impl<M> SlotFrame<M> {
    /// An empty slot frame over the universe `0..n`.
    pub fn new(n: usize) -> Self {
        SlotFrame {
            transmit: NodeSlots::new(n),
            listen: NodeSet::new(n),
            feedback: NodeSlots::new(n),
            received: NodeSet::new(n),
        }
    }

    /// Clears transmitters, listeners, feedback and the received index for
    /// the next slot.
    pub fn clear(&mut self) {
        self.transmit.clear();
        self.listen.clear();
        self.feedback.clear();
        self.received.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_and_scratch_are_send_sound() {
        // Per-worker frame/scratch sets cross thread boundaries in the
        // parallel scenario runner; pin the auto-traits here so any future
        // shared-interior-mutability addition fails at the source.
        fn assert_send<T: Send>() {}
        assert_send::<NodeSet>();
        assert_send::<NodeSlots<u64>>();
        assert_send::<RoundFrame<u64>>();
        assert_send::<SlotFrame<u64>>();
        assert_send::<crate::DecayScratch<u64>>();
        assert_send::<crate::RadioNetwork<u64>>();
        assert_send::<crate::EnergyMeter>();
    }

    #[test]
    fn node_set_insert_remove_contains() {
        let mut s = NodeSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(s.insert(64));
        assert!(!s.insert(64), "double insert reports not-fresh");
        assert_eq!(s.len(), 3);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(130));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn node_set_iterates_ascending_by_construction() {
        let mut s = NodeSet::new(200);
        for v in [199, 0, 63, 64, 65, 127, 128, 3] {
            s.insert(v);
        }
        let order: Vec<usize> = s.iter().collect();
        assert_eq!(order, vec![0, 3, 63, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn node_set_clear_resets() {
        let mut s = NodeSet::new(70);
        s.extend([1, 2, 69]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(1));
    }

    #[test]
    #[should_panic]
    fn node_set_rejects_out_of_universe_insert() {
        NodeSet::new(4).insert(4);
    }

    #[test]
    fn node_set_try_insert_tolerates_out_of_universe() {
        let mut s = NodeSet::new(4);
        assert!(s.try_insert(3));
        assert!(!s.try_insert(3), "duplicate reports not-fresh");
        assert!(!s.try_insert(4), "out-of-universe is ignored");
        assert!(!s.try_insert(1000));
        assert_eq!(s.len(), 1);
        assert!(!s.contains(4));
    }

    #[test]
    fn node_set_equality_ignores_watermark_history() {
        let mut a = NodeSet::new(300);
        let mut b = NodeSet::new(300);
        a.insert(5);
        a.insert(299); // watermark high...
        a.remove(299); // ...and left high by remove
        b.insert(5);
        assert_eq!(a, b, "same members, different watermarks");
        assert_ne!(a, NodeSet::new(300));
        assert_ne!(NodeSet::new(64), NodeSet::new(65), "universe is semantic");
    }

    #[test]
    fn node_set_watermark_clear_then_reuse() {
        let mut s = NodeSet::new(640);
        s.insert(639);
        assert_eq!(s.watermark(), 10);
        s.clear();
        assert_eq!(s.watermark(), 0);
        s.insert(2);
        assert_eq!(s.watermark(), 1);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2]);
        assert!(!s.contains(639));
    }

    #[test]
    fn node_set_bulk_kernels_match_per_bit_semantics() {
        let n = 200;
        let xs = [0usize, 3, 63, 64, 65, 127, 128, 199];
        let ys = [3usize, 64, 66, 128, 190, 199];
        let mut a = NodeSet::new(n);
        a.extend(xs);
        let mut b = NodeSet::new(n);
        b.extend(ys);

        let mut u = a.clone();
        u.union_with(&b);
        let want: Vec<usize> = (0..n)
            .filter(|v| xs.contains(v) || ys.contains(v))
            .collect();
        assert_eq!(u.iter().collect::<Vec<_>>(), want);
        assert_eq!(u.len(), want.len());

        let mut i = a.clone();
        i.intersect_with(&b);
        let want: Vec<usize> = (0..n)
            .filter(|v| xs.contains(v) && ys.contains(v))
            .collect();
        assert_eq!(i.iter().collect::<Vec<_>>(), want);
        assert_eq!(i.len(), want.len());
        assert_eq!(a.count_intersection(&b), want.len());
        assert!(!a.is_disjoint(&b));

        let mut d = a.clone();
        d.difference_with(&b);
        let want: Vec<usize> = (0..n)
            .filter(|v| xs.contains(v) && !ys.contains(v))
            .collect();
        assert_eq!(d.iter().collect::<Vec<_>>(), want);
        assert_eq!(d.len(), want.len());
        assert!(
            d.is_disjoint(&i),
            "difference and intersection are disjoint"
        );
        assert_eq!(d.count_intersection(&i), 0);
    }

    #[test]
    fn node_set_copy_from_overwrites_stale_high_words() {
        let n = 300;
        let mut a = NodeSet::new(n);
        a.insert(299); // high watermark in the destination
        let mut b = NodeSet::new(n);
        b.insert(1);
        a.copy_from(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1]);
        assert_eq!(a.len(), 1);
        assert!(!a.contains(299), "stale high word must be zeroed");
        a.insert(299);
        assert!(a.contains(299), "watermark grows back on insert");
    }

    #[test]
    fn node_set_words_mut_recount_round_trip() {
        let mut s = NodeSet::new(130);
        s.insert(129);
        s.words_mut()[0] = 0b1011;
        s.recount();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 3, 129]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.watermark(), 3);
        s.words_mut().fill(0);
        s.recount();
        assert!(s.is_empty());
        assert_eq!(s.watermark(), 0);
    }

    #[test]
    fn node_slots_round_trip_and_first_write_wins() {
        let mut m: NodeSlots<u64> = NodeSlots::new(100);
        m.insert(7, 70);
        m.insert(3, 30);
        m.insert_if_absent(7, 71);
        assert_eq!(m.get(7), Some(&70), "first write wins");
        m.insert(7, 72);
        assert_eq!(m.get(7), Some(&72), "plain insert overwrites");
        assert_eq!(m.len(), 2);
        let pairs: Vec<(usize, u64)> = m.iter().map(|(v, &x)| (v, x)).collect();
        assert_eq!(pairs, vec![(3, 30), (7, 72)]);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(7), None);
    }

    #[test]
    fn round_frame_fill_clear_reuse() {
        let mut f: RoundFrame<u64> = RoundFrame::new(10);
        f.add_sender(2, 22);
        f.add_receiver(5);
        let (s, r, d) = f.parts_mut();
        assert_eq!(s.get(2), Some(&22));
        assert!(r.contains(5));
        d.insert(5, 22);
        assert_eq!(f.delivered().get(5), Some(&22));
        f.clear();
        assert!(f.senders().is_empty());
        assert!(f.receivers().is_empty());
        assert!(f.delivered().is_empty());
    }

    #[test]
    fn round_frame_swap_delivered_moves_without_clone() {
        let mut f: RoundFrame<u64> = RoundFrame::new(6);
        f.parts_mut().2.insert(1, 11);
        let mut held: NodeSlots<u64> = NodeSlots::new(6);
        f.swap_delivered(&mut held);
        assert_eq!(held.get(1), Some(&11));
        assert!(f.delivered().is_empty());
    }
}
