//! Dense, reusable round-frame data structures.
//!
//! Every protocol in this repository is a sequence of rounds in which a
//! *sparse subset* of a *fixed universe* of nodes acts. Representing those
//! subsets as `HashMap`/`HashSet` (as the seed did) costs an allocation and
//! a hash per participant per round, and — because hash iteration order is
//! randomized per process — forces every consumer that draws from a seeded
//! RNG to sort the keys first to stay deterministic.
//!
//! The types here make determinism a *structural* property instead:
//!
//! * [`NodeSet`] — a dense bitset over `0..n` whose iterator is ascending
//!   by construction. No sort is ever needed.
//! * [`NodeSlots<T>`] — a slot-indexed arena `node → T` backed by a
//!   `Vec<Option<T>>` plus a [`NodeSet`] occupancy index, so membership is
//!   one bit-test and iteration is ascending.
//! * [`RoundFrame<M>`] — one Local-Broadcast-shaped round: senders (with
//!   their messages), receivers, and the delivered output, all reusable
//!   across calls via [`RoundFrame::clear`] (clearing touches only the
//!   previously occupied entries, so a sparse round on a large universe
//!   stays cheap).
//! * [`SlotFrame<M>`] — one physical channel slot: transmitters, listeners,
//!   and per-listener feedback, used by the columnar
//!   [`RadioNetwork::step_frame`](crate::network::RadioNetwork::step_frame).

use crate::model::{Feedback, LbFeedback};

/// A dense set of node identifiers over a fixed universe `0..n`.
///
/// Insert, remove and membership are `O(1)`; iteration is ascending by
/// construction and `O(n/64 + |set|)`. Occupied words are not tracked:
/// `clear` zeroes all `n/64` words, a single `memset` that in practice
/// beats per-word bookkeeping at the universe sizes the simulator handles
/// (unlike [`NodeSlots::clear`], which is `O(|occupied|)`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeSet {
    words: Vec<u64>,
    universe: usize,
    len: usize,
}

impl NodeSet {
    /// An empty set over the universe `0..n`.
    pub fn new(n: usize) -> Self {
        NodeSet {
            words: vec![0; n.div_ceil(64)],
            universe: n,
            len: 0,
        }
    }

    /// Size of the universe this set ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every member. `O(n/64)`.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Inserts `v`; returns `true` if it was not already present.
    ///
    /// Panics if `v` is outside the universe.
    pub fn insert(&mut self, v: usize) -> bool {
        assert!(
            v < self.universe,
            "node {v} outside universe {}",
            self.universe
        );
        let (w, b) = (v / 64, 1u64 << (v % 64));
        let fresh = self.words[w] & b == 0;
        self.words[w] |= b;
        self.len += usize::from(fresh);
        fresh
    }

    /// Removes `v`; returns `true` if it was present.
    pub fn remove(&mut self, v: usize) -> bool {
        if v >= self.universe {
            return false;
        }
        let (w, b) = (v / 64, 1u64 << (v % 64));
        let present = self.words[w] & b != 0;
        self.words[w] &= !b;
        self.len -= usize::from(present);
        present
    }

    /// Membership test. `O(1)`; out-of-universe ids are never members.
    pub fn contains(&self, v: usize) -> bool {
        v < self.universe && self.words[v / 64] & (1u64 << (v % 64)) != 0
    }

    /// Iterates the members in ascending order.
    pub fn iter(&self) -> NodeSetIter<'_> {
        NodeSetIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Inserts every id produced by `iter`.
    pub fn extend(&mut self, iter: impl IntoIterator<Item = usize>) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = usize;
    type IntoIter = NodeSetIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Ascending iterator over a [`NodeSet`].
pub struct NodeSetIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for NodeSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * 64 + bit)
    }
}

/// A slot-indexed arena mapping node ids to values, with a [`NodeSet`]
/// occupancy index.
///
/// This is the dense replacement for `HashMap<usize, T>` in per-round
/// message plumbing: `O(1)` unhashed insert/lookup, ascending iteration by
/// construction, and `clear` touches only the occupied slots (so reuse
/// across sparse rounds is cheap even over a large universe).
#[derive(Clone, Debug)]
pub struct NodeSlots<T> {
    slots: Vec<Option<T>>,
    occupied: NodeSet,
}

impl<T> NodeSlots<T> {
    /// An empty arena over the universe `0..n`.
    pub fn new(n: usize) -> Self {
        NodeSlots {
            slots: (0..n).map(|_| None).collect(),
            occupied: NodeSet::new(n),
        }
    }

    /// Size of the universe.
    pub fn universe(&self) -> usize {
        self.occupied.universe()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.occupied.len()
    }

    /// `true` if no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.occupied.is_empty()
    }

    /// Removes every entry, touching only the occupied slots.
    pub fn clear(&mut self) {
        // Drop values via the occupancy index rather than scanning all n
        // slots: sparse rounds over big universes stay O(|occupied|).
        let slots = &mut self.slots;
        for v in self.occupied.iter() {
            slots[v] = None;
        }
        self.occupied.clear();
    }

    /// Inserts `value` at node `v`, replacing any previous value.
    pub fn insert(&mut self, v: usize, value: T) {
        self.slots[v] = Some(value);
        self.occupied.insert(v);
    }

    /// Inserts only if `v` is unoccupied (first-write-wins semantics, the
    /// shape every delivery loop in this repository wants).
    pub fn insert_if_absent(&mut self, v: usize, value: T) {
        if !self.occupied.contains(v) {
            self.insert(v, value);
        }
    }

    /// The value at node `v`, if any.
    pub fn get(&self, v: usize) -> Option<&T> {
        self.slots.get(v).and_then(|s| s.as_ref())
    }

    /// Membership test: `O(1)` against the occupancy bitset.
    pub fn contains(&self, v: usize) -> bool {
        self.occupied.contains(v)
    }

    /// The occupancy index (e.g. to iterate keys only).
    pub fn keys(&self) -> &NodeSet {
        &self.occupied
    }

    /// Iterates `(node, &value)` in ascending node order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> + '_ {
        self.occupied
            .iter()
            .map(|v| (v, self.slots[v].as_ref().expect("occupied slot")))
    }
}

/// One Local-Broadcast-shaped round over a fixed universe of nodes:
/// senders (each with a message), receivers, and the delivered output.
///
/// The frame is the unit of reuse: allocate it once per network (e.g. via
/// `RadioStack::new_frame` in `radio-protocols`), then `clear`/fill/call for
/// every round. Backends write deliveries through [`RoundFrame::parts_mut`],
/// which splits the frame into disjoint input/output borrows.
#[derive(Clone, Debug)]
pub struct RoundFrame<M> {
    senders: NodeSlots<M>,
    receivers: NodeSet,
    delivered: NodeSlots<M>,
    feedback: NodeSlots<LbFeedback>,
}

impl<M> RoundFrame<M> {
    /// An empty frame over the universe `0..n`.
    pub fn new(n: usize) -> Self {
        RoundFrame {
            senders: NodeSlots::new(n),
            receivers: NodeSet::new(n),
            delivered: NodeSlots::new(n),
            feedback: NodeSlots::new(n),
        }
    }

    /// Size of the node universe this frame ranges over.
    pub fn num_nodes(&self) -> usize {
        self.receivers.universe()
    }

    /// Clears senders, receivers, deliveries and feedback for reuse.
    pub fn clear(&mut self) {
        self.senders.clear();
        self.receivers.clear();
        self.delivered.clear();
        self.feedback.clear();
    }

    /// Registers `v` as a sender holding `m`.
    pub fn add_sender(&mut self, v: usize, m: M) {
        self.senders.insert(v, m);
    }

    /// Registers `v` as a receiver.
    pub fn add_receiver(&mut self, v: usize) {
        self.receivers.insert(v);
    }

    /// The sender arena.
    pub fn senders(&self) -> &NodeSlots<M> {
        &self.senders
    }

    /// The receiver set.
    pub fn receivers(&self) -> &NodeSet {
        &self.receivers
    }

    /// The messages delivered by the last call executed on this frame.
    pub fn delivered(&self) -> &NodeSlots<M> {
        &self.delivered
    }

    /// Per-receiver channel verdicts of the last call, populated only by
    /// collision-detection-capable backends (empty otherwise). A receiver
    /// holding [`LbFeedback::Silence`] learned that it has no sending
    /// neighbour — the signal CD-aware protocols branch on.
    pub fn feedback(&self) -> &NodeSlots<LbFeedback> {
        &self.feedback
    }

    /// Splits the frame into `(senders, receivers, delivered)` with the
    /// output mutably borrowed — the shape every backend needs to read the
    /// inputs while recording deliveries.
    pub fn parts_mut(&mut self) -> (&NodeSlots<M>, &NodeSet, &mut NodeSlots<M>) {
        (&self.senders, &self.receivers, &mut self.delivered)
    }

    /// Like [`RoundFrame::parts_mut`], additionally borrowing the feedback
    /// lane mutably — the shape collision-detection-capable backends need to
    /// record per-receiver verdicts alongside deliveries.
    pub fn parts_with_feedback_mut(
        &mut self,
    ) -> (
        &NodeSlots<M>,
        &NodeSet,
        &mut NodeSlots<M>,
        &mut NodeSlots<LbFeedback>,
    ) {
        (
            &self.senders,
            &self.receivers,
            &mut self.delivered,
            &mut self.feedback,
        )
    }

    /// Clears only the per-call outputs — deliveries and feedback (backends
    /// call this on entry so a reused frame never leaks the previous round's
    /// results).
    pub fn clear_delivered(&mut self) {
        self.delivered.clear();
        self.feedback.clear();
    }

    /// Swaps the delivery arena with `other` (same universe required), e.g.
    /// to hold on to one round's output while the frame is reused for the
    /// next round without cloning messages.
    pub fn swap_delivered(&mut self, other: &mut NodeSlots<M>) {
        assert_eq!(other.universe(), self.delivered.universe());
        std::mem::swap(&mut self.delivered, other);
    }

    /// Replaces the delivery arena wholesale (same universe required).
    pub fn replace_delivered(&mut self, delivered: NodeSlots<M>) {
        assert_eq!(delivered.universe(), self.receivers.universe());
        self.delivered = delivered;
    }
}

/// One physical channel slot in columnar form: who transmits (with the
/// payload), who listens, and — after
/// [`RadioNetwork::step_frame`](crate::network::RadioNetwork::step_frame) —
/// what each listener heard.
#[derive(Clone, Debug)]
pub struct SlotFrame<M> {
    /// Transmitters and their payloads.
    pub transmit: NodeSlots<M>,
    /// Listeners.
    pub listen: NodeSet,
    /// Per-listener feedback (filled by the network).
    pub feedback: NodeSlots<Feedback<M>>,
}

impl<M> SlotFrame<M> {
    /// An empty slot frame over the universe `0..n`.
    pub fn new(n: usize) -> Self {
        SlotFrame {
            transmit: NodeSlots::new(n),
            listen: NodeSet::new(n),
            feedback: NodeSlots::new(n),
        }
    }

    /// Clears transmitters, listeners and feedback for the next slot.
    pub fn clear(&mut self) {
        self.transmit.clear();
        self.listen.clear();
        self.feedback.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_and_scratch_are_send_sound() {
        // Per-worker frame/scratch sets cross thread boundaries in the
        // parallel scenario runner; pin the auto-traits here so any future
        // shared-interior-mutability addition fails at the source.
        fn assert_send<T: Send>() {}
        assert_send::<NodeSet>();
        assert_send::<NodeSlots<u64>>();
        assert_send::<RoundFrame<u64>>();
        assert_send::<SlotFrame<u64>>();
        assert_send::<crate::DecayScratch<u64>>();
        assert_send::<crate::RadioNetwork<u64>>();
        assert_send::<crate::EnergyMeter>();
    }

    #[test]
    fn node_set_insert_remove_contains() {
        let mut s = NodeSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(s.insert(64));
        assert!(!s.insert(64), "double insert reports not-fresh");
        assert_eq!(s.len(), 3);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(130));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn node_set_iterates_ascending_by_construction() {
        let mut s = NodeSet::new(200);
        for v in [199, 0, 63, 64, 65, 127, 128, 3] {
            s.insert(v);
        }
        let order: Vec<usize> = s.iter().collect();
        assert_eq!(order, vec![0, 3, 63, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn node_set_clear_resets() {
        let mut s = NodeSet::new(70);
        s.extend([1, 2, 69]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(1));
    }

    #[test]
    #[should_panic]
    fn node_set_rejects_out_of_universe_insert() {
        NodeSet::new(4).insert(4);
    }

    #[test]
    fn node_slots_round_trip_and_first_write_wins() {
        let mut m: NodeSlots<u64> = NodeSlots::new(100);
        m.insert(7, 70);
        m.insert(3, 30);
        m.insert_if_absent(7, 71);
        assert_eq!(m.get(7), Some(&70), "first write wins");
        m.insert(7, 72);
        assert_eq!(m.get(7), Some(&72), "plain insert overwrites");
        assert_eq!(m.len(), 2);
        let pairs: Vec<(usize, u64)> = m.iter().map(|(v, &x)| (v, x)).collect();
        assert_eq!(pairs, vec![(3, 30), (7, 72)]);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(7), None);
    }

    #[test]
    fn round_frame_fill_clear_reuse() {
        let mut f: RoundFrame<u64> = RoundFrame::new(10);
        f.add_sender(2, 22);
        f.add_receiver(5);
        let (s, r, d) = f.parts_mut();
        assert_eq!(s.get(2), Some(&22));
        assert!(r.contains(5));
        d.insert(5, 22);
        assert_eq!(f.delivered().get(5), Some(&22));
        f.clear();
        assert!(f.senders().is_empty());
        assert!(f.receivers().is_empty());
        assert!(f.delivered().is_empty());
    }

    #[test]
    fn round_frame_swap_delivered_moves_without_clone() {
        let mut f: RoundFrame<u64> = RoundFrame::new(6);
        f.parts_mut().2.insert(1, 11);
        let mut held: NodeSlots<u64> = NodeSlots::new(6);
        f.swap_delivered(&mut held);
        assert_eq!(held.get(1), Some(&11));
        assert!(f.delivered().is_empty());
    }
}
