//! The synchronous radio channel: one round of the `RN[b]` model.

use std::collections::HashMap;
use std::sync::Arc;

use radio_graph::{Graph, NodeId};

use crate::energy::{EnergyMeter, EnergyReport};
use crate::frame::{NodeSet, SlotFrame};
use crate::model::{Action, CollisionDetection, Feedback, MessageBudget, Payload};

/// Reusable buffers for the columnar delivery-resolution path of
/// [`RadioNetwork::step_frame`].
#[derive(Clone, Debug)]
struct ResolveScratch {
    /// Nodes covered by at least one transmitting neighbour this slot.
    covered_once: NodeSet,
    /// Nodes covered by two or more transmitting neighbours this slot.
    covered_twice: NodeSet,
    /// For a node covered exactly once: the transmitter that covered it.
    /// Entries are meaningful only where `covered_once` (and not
    /// `covered_twice`) is set *this* slot; stale entries are never read,
    /// so the vector is not cleared between slots.
    from: Vec<usize>,
}

impl ResolveScratch {
    fn new(n: usize) -> Self {
        ResolveScratch {
            covered_once: NodeSet::new(n),
            covered_twice: NodeSet::new(n),
            from: vec![0; n],
        }
    }
}

/// A radio network instance: a topology, a collision-detection mode, a
/// message budget, and the running energy meter.
///
/// The network is generic over the payload type `M`; the paper's protocols
/// all use `O(log n)`-bit payloads, which the budget check enforces when a
/// finite budget is configured.
#[derive(Clone, Debug)]
pub struct RadioNetwork<M> {
    graph: Arc<Graph>,
    cd: CollisionDetection,
    budget: MessageBudget,
    meter: EnergyMeter,
    resolve: ResolveScratch,
    _payload: std::marker::PhantomData<M>,
}

impl<M: Payload> RadioNetwork<M> {
    /// Creates a network over `graph` with no collision detection and an
    /// unlimited message budget.
    ///
    /// Accepts either an owned [`Graph`] or a pre-shared `Arc<Graph>`; the
    /// latter makes per-cell network construction a refcount bump instead of
    /// a full CSR copy when many cells share one topology.
    pub fn new(graph: impl Into<Arc<Graph>>) -> Self {
        let graph = graph.into();
        let n = graph.num_nodes();
        RadioNetwork {
            graph,
            cd: CollisionDetection::None,
            budget: MessageBudget::Unlimited,
            meter: EnergyMeter::new(n),
            resolve: ResolveScratch::new(n),
            _payload: std::marker::PhantomData,
        }
    }

    /// Sets the collision-detection mode.
    pub fn with_collision_detection(mut self, cd: CollisionDetection) -> Self {
        self.cd = cd;
        self
    }

    /// Sets the per-message bit budget (the `b` of `RN[b]`).
    pub fn with_message_budget(mut self, budget: MessageBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The underlying topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of devices.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// The collision-detection mode in force.
    pub fn collision_detection(&self) -> CollisionDetection {
        self.cd
    }

    /// Read access to the energy meter.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Convenience: the meter's summary report.
    pub fn report(&self) -> EnergyReport {
        self.meter.report()
    }

    /// Energy of device `v` so far.
    pub fn energy(&self, v: NodeId) -> u64 {
        self.meter.energy(v)
    }

    /// Maximum per-device energy so far.
    pub fn max_energy(&self) -> u64 {
        self.meter.max_energy()
    }

    /// Elapsed slots so far.
    pub fn slots(&self) -> u64 {
        self.meter.slots()
    }

    /// Executes one synchronous slot.
    ///
    /// `actions` maps a device to its action for the slot; devices not in
    /// the map idle. Returns, for each **listening** device, the channel
    /// feedback it observed. Transmitters and idlers are absent from the
    /// result (a transmitter gets no feedback about its own transmission in
    /// this model).
    ///
    /// Panics if a transmitted payload exceeds the configured bit budget.
    pub fn step(&mut self, actions: &HashMap<NodeId, Action<M>>) -> HashMap<NodeId, Feedback<M>> {
        let n = self.num_nodes();
        // Collect transmitters.
        let mut transmissions: HashMap<NodeId, M> = HashMap::new();
        for (&v, action) in actions {
            assert!(v < n, "device {v} out of range");
            match action {
                Action::Idle => {}
                Action::Listen => {
                    self.meter.charge_listen(v);
                }
                Action::Transmit(m) => {
                    assert!(
                        self.budget.allows(m.bit_size()),
                        "payload of {} bits exceeds the message budget {:?}",
                        m.bit_size(),
                        self.budget
                    );
                    self.meter.charge_transmit(v);
                    transmissions.insert(v, m.clone());
                }
            }
        }
        // Resolve reception for each listener.
        let mut feedback = HashMap::new();
        for (&v, action) in actions {
            if !matches!(action, Action::Listen) {
                continue;
            }
            let mut heard: Option<&M> = None;
            let mut count = 0usize;
            for &u in self.graph.neighbors(v) {
                if let Some(m) = transmissions.get(&u) {
                    count += 1;
                    heard = Some(m);
                    if count > 1 {
                        break;
                    }
                }
            }
            let fb = match (count, self.cd) {
                (1, _) => Feedback::Received(heard.expect("one transmitter").clone()),
                (0, CollisionDetection::None) => Feedback::Nothing,
                (_, CollisionDetection::None) => Feedback::Nothing,
                (0, CollisionDetection::Receiver) => Feedback::Silence,
                (_, CollisionDetection::Receiver) => Feedback::Noise,
            };
            feedback.insert(v, fb);
        }
        self.meter.tick();
        feedback
    }

    /// Executes one synchronous slot in columnar form.
    ///
    /// The counterpart of [`RadioNetwork::step`] for the dense round-frame
    /// engine: transmitters and listeners come in as a [`SlotFrame`], and
    /// per-listener feedback is written back into `frame.feedback` (cleared
    /// on entry), with `frame.received` indexing the listeners that decoded
    /// a message. Nodes in neither set idle and spend no energy.
    ///
    /// Delivery resolution is **adaptive**: when the transmitters' summed
    /// degree is small relative to the listeners' (the common decay case —
    /// a few senders, a settling frontier of listeners), reception is
    /// resolved by the columnar path ([`RadioNetwork::step_frame_columnar`])
    /// that accumulates transmitter coverage into two bitsets and classifies
    /// all listeners a `u64` word at a time; when transmitters dominate, the
    /// listener-scan path ([`RadioNetwork::step_frame_scan`]) walks each
    /// listener's CSR neighbourhood instead. Both paths produce bit-for-bit
    /// identical frames and meters (pinned by the kernel-equivalence tests),
    /// so the choice is invisible to protocols.
    ///
    /// Semantics (energy charges, collision resolution, budget enforcement)
    /// are identical to [`RadioNetwork::step`]; a node present in both sets
    /// acts as a transmitter only, matching `step`'s treatment of a single
    /// action per node.
    ///
    /// Panics if a transmitted payload exceeds the configured bit budget,
    /// or if the frame's universe differs from the network's node count.
    pub fn step_frame(&mut self, frame: &mut SlotFrame<M>) {
        // Crossover heuristic (measured via the `frame_kernels/delivery`
        // bench): the scan path costs ~Σ deg(listener) bitset probes, the
        // columnar path ~Σ deg(transmitter) coverage writes — each a little
        // heavier than a probe, hence the 2x weight — plus a word-parallel
        // classification sweep over the listen prefix. Both sums are O(|set|)
        // to compute from the CSR degree table, negligible next to either
        // resolution loop.
        let t_deg: usize = frame
            .transmit
            .keys()
            .iter()
            .map(|t| self.graph.degree(t))
            .sum();
        let l_deg: usize = frame
            .listen
            .iter()
            .filter(|&v| !frame.transmit.contains(v))
            .map(|v| self.graph.degree(v))
            .sum();
        if 2 * t_deg + frame.listen.watermark() <= l_deg {
            self.step_frame_columnar(frame);
        } else {
            self.step_frame_scan(frame);
        }
    }

    /// Charges every transmitter (enforcing the bit budget) — the stage both
    /// resolution paths share.
    fn charge_transmitters(&mut self, frame: &SlotFrame<M>) {
        let n = self.num_nodes();
        assert_eq!(
            frame.listen.universe(),
            n,
            "slot frame universe does not match the network"
        );
        for (v, m) in frame.transmit.iter() {
            assert!(v < n, "device {v} out of range");
            assert!(
                self.budget.allows(m.bit_size()),
                "payload of {} bits exceeds the message budget {:?}",
                m.bit_size(),
                self.budget
            );
            self.meter.charge_transmit(v);
        }
    }

    /// The listener-scan resolution path: one CSR neighbourhood walk per
    /// listener, counting transmitting neighbours with an early exit at two.
    /// `O(Σ deg(listener))`. This is the scalar reference the columnar path
    /// is pinned against; [`RadioNetwork::step_frame`] selects it when
    /// transmitters dominate listeners.
    pub fn step_frame_scan(&mut self, frame: &mut SlotFrame<M>) {
        frame.feedback.clear();
        frame.received.clear();
        self.charge_transmitters(frame);
        for v in frame.listen.iter() {
            if frame.transmit.contains(v) {
                continue; // transmitting wins; already charged above
            }
            self.meter.charge_listen(v);
            let mut heard: Option<&M> = None;
            let mut count = 0usize;
            for &u in self.graph.neighbors(v) {
                if let Some(m) = frame.transmit.get(u) {
                    count += 1;
                    heard = Some(m);
                    if count > 1 {
                        break;
                    }
                }
            }
            let fb = match (count, self.cd) {
                (1, _) => {
                    frame.received.insert(v);
                    Feedback::Received(heard.expect("one transmitter").clone())
                }
                (0, CollisionDetection::None) => Feedback::Nothing,
                (_, CollisionDetection::None) => Feedback::Nothing,
                (0, CollisionDetection::Receiver) => Feedback::Silence,
                (_, CollisionDetection::Receiver) => Feedback::Noise,
            };
            frame.feedback.insert(v, fb);
        }
        self.meter.tick();
    }

    /// The columnar resolution path: accumulate each transmitter's coverage
    /// into `covered_once`/`covered_twice` bitsets (`O(Σ deg(transmitter))`),
    /// then classify all listeners a `u64` word at a time — silence, unique
    /// delivery, or collision fall out of `listen & !transmit`, `once` and
    /// `twice` word combinations. Byte-identical in outputs and energy to
    /// [`RadioNetwork::step_frame_scan`]; [`RadioNetwork::step_frame`]
    /// selects it when transmitters are few relative to listeners.
    pub fn step_frame_columnar(&mut self, frame: &mut SlotFrame<M>) {
        frame.feedback.clear();
        frame.received.clear();
        self.charge_transmitters(frame);
        let RadioNetwork {
            graph,
            cd,
            meter,
            resolve,
            ..
        } = self;
        let cd = *cd;
        let ResolveScratch {
            covered_once,
            covered_twice,
            from,
        } = resolve;
        covered_once.clear();
        covered_twice.clear();
        for (t, _) in frame.transmit.iter() {
            for &u in graph.neighbors(t) {
                if covered_once.insert(u) {
                    from[u] = t;
                } else {
                    covered_twice.insert(u);
                }
            }
        }
        let listen_w = frame.listen.words();
        let transmit_w = frame.transmit.keys().words();
        let once_w = covered_once.words();
        let twice_w = covered_twice.words();
        for wi in 0..frame.listen.watermark() {
            // 64 listeners classified per word; only actual listeners cost
            // a per-bit feedback insert.
            let mut bits = listen_w[wi] & !transmit_w[wi];
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let v = wi * 64 + b;
                meter.charge_listen(v);
                let mask = 1u64 << b;
                let fb = if twice_w[wi] & mask != 0 {
                    match cd {
                        CollisionDetection::None => Feedback::Nothing,
                        CollisionDetection::Receiver => Feedback::Noise,
                    }
                } else if once_w[wi] & mask != 0 {
                    frame.received.insert(v);
                    Feedback::Received(
                        frame
                            .transmit
                            .get(from[v])
                            .expect("unique covering transmitter")
                            .clone(),
                    )
                } else {
                    match cd {
                        CollisionDetection::None => Feedback::Nothing,
                        CollisionDetection::Receiver => Feedback::Silence,
                    }
                };
                frame.feedback.insert(v, fb);
            }
        }
        meter.tick();
    }

    /// Runs `k` consecutive slots in which nobody does anything (useful to
    /// model agreed-upon idle gaps; costs time but no energy).
    pub fn idle_slots(&mut self, k: u64) {
        self.meter.tick_by(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::generators;

    fn actions<M: Payload>(list: Vec<(NodeId, Action<M>)>) -> HashMap<NodeId, Action<M>> {
        list.into_iter().collect()
    }

    #[test]
    fn single_transmitter_is_heard() {
        let g = generators::path(3); // 0-1-2
        let mut net: RadioNetwork<u64> = RadioNetwork::new(g);
        let fb = net.step(&actions(vec![
            (0, Action::Transmit(42)),
            (1, Action::Listen),
            (2, Action::Listen),
        ]));
        assert_eq!(fb[&1], Feedback::Received(42));
        // Vertex 2 is not adjacent to 0: hears nothing.
        assert_eq!(fb[&2], Feedback::Nothing);
        assert_eq!(net.energy(0), 1);
        assert_eq!(net.energy(1), 1);
        assert_eq!(net.energy(2), 1);
        assert_eq!(net.slots(), 1);
    }

    #[test]
    fn two_transmitters_collide() {
        let g = generators::star(4); // center 0, leaves 1..3
        let mut net: RadioNetwork<u64> = RadioNetwork::new(g);
        let fb = net.step(&actions(vec![
            (1, Action::Transmit(1)),
            (2, Action::Transmit(2)),
            (0, Action::Listen),
        ]));
        assert_eq!(fb[&0], Feedback::Nothing);
    }

    #[test]
    fn collision_detection_distinguishes_silence_and_noise() {
        let g = generators::star(4);
        let mut net: RadioNetwork<u64> =
            RadioNetwork::new(g).with_collision_detection(CollisionDetection::Receiver);
        // Noise: two leaves transmit.
        let fb = net.step(&actions(vec![
            (1, Action::Transmit(1)),
            (2, Action::Transmit(2)),
            (0, Action::Listen),
        ]));
        assert_eq!(fb[&0], Feedback::Noise);
        // Silence: nobody transmits.
        let fb = net.step(&actions(vec![(0, Action::Listen)]));
        assert_eq!(fb[&0], Feedback::Silence);
        // Reception still works.
        let fb = net.step(&actions(vec![
            (1, Action::Transmit(9)),
            (0, Action::Listen),
        ]));
        assert_eq!(fb[&0], Feedback::Received(9));
    }

    #[test]
    fn transmitter_does_not_hear_its_own_message() {
        let g = generators::path(2);
        let mut net: RadioNetwork<u64> = RadioNetwork::new(g);
        let fb = net.step(&actions(vec![
            (0, Action::Transmit(5)),
            (1, Action::Transmit(6)),
        ]));
        assert!(fb.is_empty());
    }

    #[test]
    fn idle_devices_spend_no_energy() {
        let g = generators::path(3);
        let mut net: RadioNetwork<u64> = RadioNetwork::new(g);
        net.step(&actions(vec![(0, Action::Idle), (1, Action::Listen)]));
        net.step(&actions(vec![]));
        assert_eq!(net.energy(0), 0);
        assert_eq!(net.energy(1), 1);
        assert_eq!(net.energy(2), 0);
        assert_eq!(net.slots(), 2);
    }

    #[test]
    fn non_neighbors_do_not_interfere() {
        // 0-1 and 2-3 are separate edges; simultaneous transmissions on the
        // two edges are both received.
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let mut net: RadioNetwork<u64> = RadioNetwork::new(g);
        let fb = net.step(&actions(vec![
            (0, Action::Transmit(10)),
            (2, Action::Transmit(20)),
            (1, Action::Listen),
            (3, Action::Listen),
        ]));
        assert_eq!(fb[&1], Feedback::Received(10));
        assert_eq!(fb[&3], Feedback::Received(20));
    }

    #[test]
    fn message_budget_enforced() {
        let g = generators::path(2);
        let mut net: RadioNetwork<Vec<u8>> =
            RadioNetwork::new(g).with_message_budget(MessageBudget::Bits(16));
        // 2 bytes = 16 bits: fine.
        net.step(&actions(vec![
            (0, Action::Transmit(vec![1, 2])),
            (1, Action::Listen),
        ]));
        // 3 bytes = 24 bits: panics.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.step(&actions(vec![
                (0, Action::Transmit(vec![1, 2, 3])),
                (1, Action::Listen),
            ]));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn step_frame_matches_step_semantics() {
        // Same scenario through both entry points: identical feedback and
        // identical energy/time accounting.
        let g = generators::star(5); // hub 0, leaves 1..4
        type Scenario = (Vec<(NodeId, u64)>, Vec<NodeId>);
        let scenarios: Vec<Scenario> = vec![
            (vec![(1, 11)], vec![0, 2]),         // clean reception at the hub
            (vec![(1, 11), (2, 22)], vec![0]),   // collision at the hub
            (vec![], vec![0, 3]),                // silence
            (vec![(0, 7)], vec![0, 1, 2, 3, 4]), // transmitter also listed as listener
        ];
        for cd in [CollisionDetection::None, CollisionDetection::Receiver] {
            let mut a: RadioNetwork<u64> =
                RadioNetwork::new(g.clone()).with_collision_detection(cd);
            let mut b: RadioNetwork<u64> =
                RadioNetwork::new(g.clone()).with_collision_detection(cd);
            let mut frame: SlotFrame<u64> = SlotFrame::new(5);
            for (tx, listen) in &scenarios {
                let mut acts: HashMap<NodeId, Action<u64>> = HashMap::new();
                frame.clear();
                for &(v, m) in tx {
                    acts.insert(v, Action::Transmit(m));
                    frame.transmit.insert(v, m);
                }
                for &v in listen {
                    acts.entry(v).or_insert(Action::Listen);
                    frame.listen.insert(v);
                }
                let fb_map = a.step(&acts);
                b.step_frame(&mut frame);
                let mut from_map: Vec<(NodeId, Feedback<u64>)> = fb_map.into_iter().collect();
                from_map.sort_by_key(|&(v, _)| v);
                let from_frame: Vec<(NodeId, Feedback<u64>)> =
                    frame.feedback.iter().map(|(v, f)| (v, f.clone())).collect();
                assert_eq!(from_map, from_frame, "feedback diverged under {cd:?}");
            }
            assert_eq!(a.report(), b.report(), "energy accounting diverged");
        }
    }

    #[test]
    fn step_frame_paths_are_byte_identical() {
        // The adaptive dispatch must be invisible: scan and columnar agree
        // bit-for-bit on feedback, received index and energy, whatever the
        // CD mode. (The property suite fuzzes this on random graphs; this
        // pins the hand-picked collision/silence/overlap cases.)
        let g = generators::star(5);
        type Scenario = (Vec<(NodeId, u64)>, Vec<NodeId>);
        let scenarios: Vec<Scenario> = vec![
            (vec![(1, 11)], vec![0, 2]),
            (vec![(1, 11), (2, 22)], vec![0]),
            (vec![], vec![0, 3]),
            (vec![(0, 7)], vec![0, 1, 2, 3, 4]),
        ];
        for cd in [CollisionDetection::None, CollisionDetection::Receiver] {
            let mut a: RadioNetwork<u64> =
                RadioNetwork::new(g.clone()).with_collision_detection(cd);
            let mut b: RadioNetwork<u64> =
                RadioNetwork::new(g.clone()).with_collision_detection(cd);
            let mut fa: SlotFrame<u64> = SlotFrame::new(5);
            let mut fb = fa.clone();
            for (tx, listen) in &scenarios {
                fa.clear();
                for &(v, m) in tx {
                    fa.transmit.insert(v, m);
                }
                for &v in listen {
                    fa.listen.insert(v);
                }
                fb.clear();
                for &(v, m) in tx {
                    fb.transmit.insert(v, m);
                }
                for &v in listen {
                    fb.listen.insert(v);
                }
                a.step_frame_scan(&mut fa);
                b.step_frame_columnar(&mut fb);
                let va: Vec<_> = fa.feedback.iter().map(|(v, f)| (v, f.clone())).collect();
                let vb: Vec<_> = fb.feedback.iter().map(|(v, f)| (v, f.clone())).collect();
                assert_eq!(va, vb, "feedback diverged under {cd:?}");
                assert_eq!(fa.received, fb.received, "received index diverged");
            }
            assert_eq!(a.report(), b.report(), "energy accounting diverged");
        }
    }

    #[test]
    fn idle_slots_cost_time_not_energy() {
        let g = generators::path(2);
        let mut net: RadioNetwork<u64> = RadioNetwork::new(g);
        net.idle_slots(10);
        assert_eq!(net.slots(), 10);
        assert_eq!(net.max_energy(), 0);
    }

    use radio_graph::Graph;
}
