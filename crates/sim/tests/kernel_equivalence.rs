//! Property tests pinning the word-parallel frame kernels to their scalar
//! definitions.
//!
//! Two families:
//!
//! * every bulk [`NodeSet`] kernel must agree with a naive per-bit reference
//!   (`Vec<bool>`), across universes chosen to straddle the 64-bit word
//!   boundaries — including the empty universe — and arbitrary fill
//!   patterns;
//! * the two delivery-resolution paths of the simulator,
//!   `step_frame_scan` and `step_frame_columnar`, must produce identical
//!   frames (feedback lane, received index) and identical energy meters on
//!   random graphs and random transmit/listen splits, with and without
//!   receiver-side collision detection — the invariant that makes the
//!   adaptive dispatch in `step_frame` unobservable.

use proptest::prelude::*;

use radio_graph::Graph;
use radio_sim::{CollisionDetection, NodeSet, RadioNetwork, SlotFrame};

/// Universes straddling the word boundaries: empty, single word, exactly
/// one word, one past it, exactly two words, one past them.
const UNIVERSES: [usize; 7] = [0, 1, 63, 64, 65, 127, 128];

/// Splitmix-style deterministic bit stream, so the tests need no RNG crate.
fn next_bits(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let z = *state;
    let z = (z ^ (z >> 33)).wrapping_mul(0xff51afd7ed558ccd);
    z ^ (z >> 33)
}

/// A pseudo-random set over `0..n` with roughly `density`/64 fill, plus its
/// per-bit reference.
fn random_set(n: usize, density: u64, seed: &mut u64) -> (NodeSet, Vec<bool>) {
    let mut set = NodeSet::new(n);
    let mut bits = vec![false; n];
    for (v, b) in bits.iter_mut().enumerate() {
        if next_bits(seed) % 64 < density {
            set.insert(v);
            *b = true;
        }
    }
    (set, bits)
}

fn to_indices(bits: &[bool]) -> Vec<usize> {
    bits.iter()
        .enumerate()
        .filter_map(|(v, &b)| b.then_some(v))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bulk_kernels_match_the_per_bit_reference(
        (upick, da, db) in (0usize..7, 0u64..65, 0u64..65),
        seed in 0u64..1_000_000,
    ) {
        let n = UNIVERSES[upick];
        let mut s = seed.wrapping_mul(2).wrapping_add(1);
        let (a, ra) = random_set(n, da, &mut s);
        let (b, rb) = random_set(n, db, &mut s);

        // Construction invariants: len is exact, iter ascends over exactly
        // the reference members.
        prop_assert_eq!(a.len(), ra.iter().filter(|&&x| x).count());
        prop_assert_eq!(a.iter().collect::<Vec<_>>(), to_indices(&ra));

        // union_with ≡ per-bit OR.
        let mut u = a.clone();
        u.union_with(&b);
        let ru: Vec<bool> = ra.iter().zip(&rb).map(|(&x, &y)| x || y).collect();
        prop_assert_eq!(u.iter().collect::<Vec<_>>(), to_indices(&ru));
        prop_assert_eq!(u.len(), to_indices(&ru).len());

        // intersect_with ≡ per-bit AND.
        let mut i = a.clone();
        i.intersect_with(&b);
        let ri: Vec<bool> = ra.iter().zip(&rb).map(|(&x, &y)| x && y).collect();
        prop_assert_eq!(i.iter().collect::<Vec<_>>(), to_indices(&ri));

        // difference_with ≡ per-bit AND-NOT.
        let mut d = a.clone();
        d.difference_with(&b);
        let rd: Vec<bool> = ra.iter().zip(&rb).map(|(&x, &y)| x && !y).collect();
        prop_assert_eq!(d.iter().collect::<Vec<_>>(), to_indices(&rd));

        // count_intersection / is_disjoint ≡ the reference counts.
        let ric = ra.iter().zip(&rb).filter(|(&x, &y)| x && y).count();
        prop_assert_eq!(a.count_intersection(&b), ric);
        prop_assert_eq!(a.is_disjoint(&b), ric == 0);
        prop_assert_eq!(a.count_intersection(&b), b.count_intersection(&a));

        // copy_from adopts the source exactly, even from a dirty target.
        let mut c = u.clone();
        c.copy_from(&a);
        prop_assert_eq!(&c, &a);

        // Kernels on a cleared set behave as on a fresh one (watermark
        // reset is invisible).
        let mut cleared = u;
        cleared.clear();
        prop_assert_eq!(cleared.len(), 0);
        cleared.union_with(&a);
        prop_assert_eq!(&cleared, &a);
    }
}

/// A pseudo-random graph over `n` nodes with edge probability `p`/8.
fn random_graph(n: usize, p: u64, seed: &mut u64) -> Graph {
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if next_bits(seed) % 8 < p {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Runs one slot through the given resolution path and serializes
/// everything observable: per-listener feedback, the received index, and
/// the full energy report.
fn run_path(
    g: &Graph,
    cd: CollisionDetection,
    transmitters: &[(usize, u64)],
    listeners: &[usize],
    columnar: bool,
) -> String {
    let n = g.num_nodes();
    let mut net: RadioNetwork<u64> = RadioNetwork::new(g.clone()).with_collision_detection(cd);
    let mut frame: SlotFrame<u64> = SlotFrame::new(n);
    for &(v, m) in transmitters {
        frame.transmit.insert(v, m);
    }
    for &v in listeners {
        frame.listen.insert(v);
    }
    if columnar {
        net.step_frame_columnar(&mut frame);
    } else {
        net.step_frame_scan(&mut frame);
    }
    let feedback: Vec<(usize, String)> = frame
        .feedback
        .iter()
        .map(|(v, fb)| (v, format!("{fb:?}")))
        .collect();
    format!(
        "feedback {:?}\nreceived {:?}\nreport {:?}",
        feedback,
        frame.received.iter().collect::<Vec<_>>(),
        net.report()
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn columnar_and_scan_resolution_are_byte_identical(
        (n, p, split) in (2usize..48, 0u64..9, 0u64..8),
        seed in 0u64..1_000_000,
    ) {
        let mut s = seed.wrapping_mul(2).wrapping_add(1);
        let g = random_graph(n, p, &mut s);
        // Random role split: each node transmits with probability split/8,
        // otherwise listens (idle nodes appear when split == 0 via the
        // empty transmitter branch below drawing nothing).
        let mut transmitters = Vec::new();
        let mut listeners = Vec::new();
        for v in 0..n {
            if next_bits(&mut s) % 8 < split {
                transmitters.push((v, v as u64 + 100));
            } else if !next_bits(&mut s).is_multiple_of(8) {
                listeners.push(v);
            }
        }
        for cd in [CollisionDetection::None, CollisionDetection::Receiver] {
            let scan = run_path(&g, cd, &transmitters, &listeners, false);
            let columnar = run_path(&g, cd, &transmitters, &listeners, true);
            prop_assert_eq!(
                &scan, &columnar,
                "paths diverged on n={} p={} split={} cd={:?}", n, p, split, cd
            );
        }
    }
}
