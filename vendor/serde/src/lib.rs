//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize` / `Deserialize` on its data types so
//! they are wire-ready once the real `serde` is available, but nothing in the
//! reproduction actually serializes through serde. This stand-in therefore
//! ships the two traits as *markers* (no required methods) together with
//! derive macros that emit empty impls. Swapping in the real crates is a
//! Cargo.toml-only change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeSet<T> {}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
}
