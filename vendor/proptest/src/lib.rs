//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`, ranges and
//! tuples as strategies, [`any`], [`collection::vec`] /
//! [`collection::btree_set`], [`ProptestConfig`], and the [`proptest!`] /
//! `prop_assert*` macros. Cases are generated from a fixed ChaCha8 seed, so
//! runs are deterministic; there is no shrinking — a failing case panics with
//! the assertion message directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::Range;

use rand::{Rng, SeedableRng};

/// The RNG driving case generation.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Per-test configuration; only `cases` is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Matches upstream proptest's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// Marker returned (via `Err`) when [`prop_assume!`] rejects a case.
#[derive(Clone, Copy, Debug)]
pub struct CaseRejected;

/// Create the deterministic RNG used by the [`proptest!`] macro expansion.
///
/// The seed defaults to a fixed constant so test runs are reproducible; set
/// `PROPTEST_SEED=<u64>` to explore different case streams.
pub fn new_test_rng() -> TestRng {
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x00E4_E55E_EDBF_5000);
    TestRng::seed_from_u64(seed)
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` returns for it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `f` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter: no value satisfied `{}`", self.whence);
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_via_gen!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::*;

    /// Admissible collection sizes: either fixed or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..self.hi)
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` aiming for a size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Set of values from `element`; duplicates are retried a bounded number
    /// of times, so the final set can be smaller than the sampled target but
    /// never smaller than one element when the target is positive.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < 20 * (target + 1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Everything a property-test file normally imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Assert inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when the assumption does not hold.
///
/// Expands to an early `return` out of the case closure the [`proptest!`]
/// macro wraps each body in, so it skips the whole case even when written
/// inside a loop in the body (a bare `continue` would advance that inner
/// loop instead).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($tt:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::CaseRejected);
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr;) => {};
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::new_test_rng();
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                // The closure gives `prop_assume!` a scope to return from,
                // so it skips the whole case even inside a user loop; a
                // rejected case is simply ignored.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::core::result::Result<(), $crate::CaseRejected> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                let _ = __outcome;
            }
        }
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = crate::new_test_rng();
        for _ in 0..200 {
            let v = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let (a, b) = ((0u64..5), (10i32..20)).generate(&mut rng);
            assert!(a < 5);
            assert!((10..20).contains(&b));
        }
    }

    #[test]
    fn vec_and_set_sizes() {
        let mut rng = crate::new_test_rng();
        for _ in 0..100 {
            let v = collection::vec(0usize..100, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            let s = collection::btree_set(0u64..1000, 3..5).generate(&mut rng);
            assert!((1..5).contains(&s.len()));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = crate::new_test_rng();
        let strat = (1usize..5).prop_flat_map(|n| {
            collection::vec(0usize..n, n..n + 1).prop_map(move |v| (n, v.len()))
        });
        for _ in 0..50 {
            let (n, len) = strat.generate(&mut rng);
            assert_eq!(n, len);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[allow(clippy::absurd_extreme_comparisons)]
        fn macro_smoke(x in 0u64..100, ys in collection::vec(any::<bool>(), 0..4)) {
            prop_assert!(x < 100);
            prop_assert!(ys.len() < 4);
        }

        fn assume_skips_whole_case_even_inside_a_loop(x in 0u64..10) {
            for _ in 0..3 {
                prop_assume!(x < 5);
            }
            // Cases with x >= 5 must have been rejected wholesale by the
            // assume inside the loop; if the assume merely `continue`d the
            // inner `for`, they would fall through and fail here.
            prop_assert!(x < 5);
        }
    }
}
