//! Self-contained, offline stand-in for `rand_chacha`: a real ChaCha8
//! stream-cipher generator implementing the vendored `rand` traits.
//!
//! The workspace only needs a fast, high-quality, seedable, `Clone`-able
//! deterministic generator; ChaCha8 (RFC 8439 core, 8 rounds, 64-bit
//! counter) provides exactly that without any external dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha stream cipher with 8 rounds, exposed as a random-number generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 256-bit key, 64-bit counter, 64-bit nonce.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill needed".
    idx: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (out, (wi, si)) in self.buf.iter_mut().zip(w.iter().zip(self.state.iter())) {
            *out = wi.wrapping_add(*si);
        }
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let first: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn output_is_roughly_balanced() {
        let mut r = ChaCha8Rng::seed_from_u64(99);
        let ones: u32 = (0..1024).map(|_| r.next_u64().count_ones()).sum();
        // 1024 * 64 / 2 = 32768 expected ones; allow a generous band.
        assert!((30000..36000).contains(&ones), "ones = {ones}");
    }
}
