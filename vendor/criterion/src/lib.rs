//! Offline stand-in for `criterion`.
//!
//! Provides the macro/type surface the workspace benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box`) with a
//! deliberately small measurement loop: a warm-up call plus `sample_size`
//! timed iterations, reporting the mean. Set `BENCH_JSON=1` to additionally
//! emit one JSON line per benchmark on stdout, which is how
//! `BENCH_baseline.json` is produced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Combine a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Time `f` over the configured number of iterations (after one
    /// warm-up call) and record the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let total = start.elapsed();
        self.mean_ns = total.as_nanos() as f64 / self.iters as f64;
    }
}

fn report(group: &str, id: &str, iters: u64, mean_ns: f64) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!("bench: {label:<50} {mean_ns:>14.0} ns/iter (n={iters})");
    if std::env::var_os("BENCH_JSON").is_some() {
        println!("{{\"bench\":\"{label}\",\"mean_ns\":{mean_ns:.1},\"iters\":{iters}}}");
    }
}

/// Top-level benchmark driver; mirrors `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.to_string(), 10, f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, sample_size: u64, mut f: F) {
    let mut bencher = Bencher {
        iters: sample_size,
        mean_ns: 0.0,
    };
    f(&mut bencher);
    report(group, id, bencher.iters, bencher.mean_ns);
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 5), &5u32, |b, &n| {
            b.iter(|| {
                runs += 1;
                n * 2
            });
        });
        group.finish();
        // One warm-up + three timed iterations.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
