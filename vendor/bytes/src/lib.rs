//! Offline stand-in for the `bytes` crate: a cheaply clonable, immutable
//! byte buffer backed by `Arc<[u8]>`. Only the surface this workspace uses
//! is provided (`from_static`, `copy_from_slice`, `From` conversions, slice
//! deref, equality/hashing).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Cheaply clonable immutable byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// The empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wrap a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl serde::Serialize for Bytes {}
impl<'de> serde::Deserialize<'de> for Bytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_len() {
        let b = Bytes::from_static(b"abc");
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], b"abc");
        assert_eq!(b.to_vec(), b"abc".to_vec());
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn from_vec_and_default() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert!(Bytes::default().is_empty());
    }
}
