//! Self-contained, offline stand-in for the subset of the `rand` 0.8 API
//! used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal implementation of the traits it relies on: [`RngCore`],
//! [`SeedableRng`], the extension trait [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`), and [`seq::SliceRandom`]. The concrete generator lives in the
//! sibling `rand_chacha` stand-in. Distributions are uniform only — exactly
//! what the reproduction needs for its seeded experiments.
//!
//! **Stream compatibility caveat:** this stand-in is API-compatible with
//! `rand` 0.8 but NOT stream-compatible. `seed_from_u64` expands seeds with
//! SplitMix64 (upstream uses a PCG-based expansion), `gen_range` samples by
//! modulo (upstream uses widening multiply), and `gen::<u32>()` consumes a
//! full `u64` draw. Swapping the real crates back in therefore changes every
//! seeded random stream: seed-tuned tests and recorded baselines
//! (`BENCH_baseline.json`) must be revalidated when that happens.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// Low-level uniform random source. Mirrors `rand::RngCore`.
pub trait RngCore {
    /// Next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32;
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed. Mirrors
/// `rand::SeedableRng`, including the SplitMix64-style `seed_from_u64`
/// expansion so a single `u64` keys the whole state deterministically.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Build a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 and build the
    /// generator from it.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from an [`RngCore`]. Stand-in for
/// sampling from `rand`'s `Standard` distribution via [`Rng::gen`].
pub trait StandardSample {
    /// Draw one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from. Mirrors
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange {
    /// Element type produced by the range.
    type Output;
    /// Draw one uniformly distributed value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension over [`RngCore`]. Mirrors `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the uniform ("standard") distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a half-open range.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample_one(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations (mirrors `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Extension trait for slices: shuffling and random element choice.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Counter(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<usize> = (0..50).collect();
        let mut r = Counter(3);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
