//! Offline stand-in for `serde_derive`.
//!
//! The vendored `serde` traits are pure markers (no required methods), so the
//! derives only need to emit `impl Serialize for T {}` / `impl<'de>
//! Deserialize<'de> for T {}`. The input is scanned token-by-token (no `syn`)
//! for the `struct`/`enum` keyword followed by the type name; non-generic
//! types only, which covers every derived type in this workspace.

#![warn(missing_docs)]

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                match iter.next() {
                    Some(TokenTree::Ident(name)) => return name.to_string(),
                    other => panic!("serde derive stub: expected type name, got {other:?}"),
                }
            }
        }
    }
    panic!("serde derive stub: no struct/enum found in derive input");
}

/// Derive the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated Deserialize impl parses")
}
