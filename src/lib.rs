//! # radio-energy
//!
//! A from-scratch Rust reproduction of *The Energy Complexity of BFS in
//! Radio Networks* (Chang, Dani, Hayes, Pettie; PODC 2020).
//!
//! This umbrella crate re-exports the four layers of the workspace so that
//! examples and downstream users need a single dependency:
//!
//! * [`graph`] (`radio-graph`) — graphs, generators, centralized reference
//!   algorithms, MPX clustering, lower-bound constructions.
//! * [`sim`] (`radio-sim`) — the slot-accurate `RN[b]` simulator with
//!   per-device energy metering and the Decay Local-Broadcast.
//! * [`protocols`] (`radio-protocols`) — the Local-Broadcast abstraction,
//!   distributed clustering, casts, virtual cluster networks, aggregation.
//! * [`bfs`] (`energy-bfs`) — the recursive sub-polynomial-energy BFS, the
//!   diameter approximations, baselines, and hardness experiments.
//!
//! See `README.md` for a quickstart and `DESIGN.md` / `EXPERIMENTS.md` for
//! the reproduction methodology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use energy_bfs as bfs;
pub use radio_graph as graph;
pub use radio_protocols as protocols;
pub use radio_sim as sim;

/// Convenience prelude for examples and quick experiments.
pub mod prelude {
    pub use energy_bfs::baseline::{decay_bfs, trivial_bfs, trivial_bfs_cd};
    pub use energy_bfs::diameter::{three_halves_approx_diameter, two_approx_diameter};
    pub use energy_bfs::protocol::registry;
    pub use energy_bfs::{
        build_hierarchy, recursive_bfs, recursive_bfs_with_hierarchy, BfsOutcome, EnergySummary,
        RecursiveBfsConfig,
    };
    pub use radio_graph::{generators, Graph, GraphBuilder};
    pub use radio_protocols::{
        Capabilities, EnergyView, Protocol, ProtocolError, ProtocolInput, ProtocolReport,
        RadioStack, Stack, StackBuilder, VirtualClusterNet,
    };
    pub use radio_sim::{CollisionDetection, EnergyMeter, EnergyModel, LbFeedback, RadioNetwork};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_re_exports_compile_and_link() {
        use crate::prelude::*;
        let g = generators::path(4);
        let mut net = StackBuilder::new(g).build();
        assert_eq!(net.num_nodes(), 4);
        assert!(!net.capabilities().collision_detection.is_receiver());
        let _ = RecursiveBfsConfig::default();
        // The protocol surface rides along: one registry dispatch end to end.
        let report = registry()
            .get("trivial_bfs")
            .expect("registered")
            .run(&mut net, &ProtocolInput::default())
            .expect("abstract stack satisfies everything");
        assert_eq!(report.outcome(), 4);
    }
}
