//! Multi-seed determinism sweeps.
//!
//! The frame engine makes iteration order — and therefore the mapping of
//! RNG draws to nodes — a structural property (dense sets iterate ascending
//! by construction). These tests codify the guarantee as a 6-seed × 2-run
//! sweep at three levels of the stack: the physical Decay primitive, the
//! virtual cluster network, and the full recursive BFS. Every run must be
//! byte-identical to its twin: same deliveries, same distance labels, and
//! identical energy reports down to the last counter.

use radio_energy::bfs::{recursive_bfs, RecursiveBfsConfig};
use radio_energy::graph::generators;
use radio_energy::protocols::{
    cluster_distributed, local_broadcast_once, ClusteringConfig, Msg, RadioStack, StackBuilder,
    VirtualClusterNet,
};
use radio_energy::sim::{
    decay_local_broadcast, DecayParams, DecayScratch, RadioNetwork, RoundFrame,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const SEEDS: [u64; 6] = [1, 7, 42, 1001, 65535, 0xDEAD_BEEF];

#[test]
fn decay_local_broadcast_is_seed_deterministic_across_runs() {
    let n = 48;
    let g = generators::grid(6, 8);
    let params = DecayParams::for_network(n, g.max_degree());
    let run = |seed: u64| -> String {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut net: RadioNetwork<u64> = RadioNetwork::new(g.clone());
        let mut frame: RoundFrame<u64> = RoundFrame::new(n);
        let mut scratch: DecayScratch<u64> = DecayScratch::new(n);
        let mut log = String::new();
        // Several consecutive calls through one reused frame, alternating
        // sender/receiver splits.
        for round in 0..4u64 {
            frame.clear();
            for v in 0..n {
                if (v as u64 + round).is_multiple_of(3) {
                    frame.add_sender(v, v as u64);
                } else {
                    frame.add_receiver(v);
                }
            }
            let slots = decay_local_broadcast(&mut net, &mut frame, &mut scratch, params, &mut rng);
            let delivered: Vec<(usize, u64)> =
                frame.delivered().iter().map(|(v, &m)| (v, m)).collect();
            log.push_str(&format!("round {round}: slots {slots} got {delivered:?}\n"));
        }
        log.push_str(&format!("{:?}", net.report()));
        log
    };
    for seed in SEEDS {
        assert_eq!(run(seed), run(seed), "decay diverged for seed {seed}");
    }
}

#[test]
fn virtual_cluster_net_is_seed_deterministic_across_runs() {
    let g = generators::grid(10, 10);
    let run = |seed: u64| -> String {
        let mut net = StackBuilder::new(g.clone()).with_seed(seed).build();
        let cfg = ClusteringConfig::new(3);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5a5a);
        let state = cluster_distributed(&mut net, &cfg, &mut rng);
        let k = state.num_clusters();
        let mut log = format!("clusters {k} centers {:?}\n", state.centers);
        let mut virt = VirtualClusterNet::new(&mut net, &state);
        let senders: Vec<(usize, Msg)> = (0..k / 2).map(|c| (c, Msg::words(&[c as u64]))).collect();
        let receivers: Vec<usize> = (k / 2..k).collect();
        let out = local_broadcast_once(&mut virt, &senders, &receivers);
        let delivered: Vec<(usize, u64)> = out.iter().map(|(c, m)| (c, m.word(0))).collect();
        log.push_str(&format!("delivered {delivered:?}\n"));
        let energies: Vec<u64> = (0..g.num_nodes()).map(|v| net.lb_energy(v)).collect();
        log.push_str(&format!("time {} energy {energies:?}", net.lb_time()));
        log
    };
    for seed in SEEDS {
        assert_eq!(run(seed), run(seed), "virtual net diverged for seed {seed}");
    }
}

#[test]
fn recursive_bfs_is_seed_deterministic_across_runs() {
    let g = generators::grid(9, 9);
    let run = |seed: u64| -> String {
        let mut net = StackBuilder::new(g.clone()).with_seed(seed).build();
        let config = RecursiveBfsConfig {
            inv_beta: 4,
            max_depth: 1,
            trivial_cutoff: 4,
            seed,
            ..Default::default()
        };
        let outcome = recursive_bfs(&mut net, 0, 16, &config);
        let energies: Vec<u64> = (0..g.num_nodes()).map(|v| net.lb_energy(v)).collect();
        format!(
            "dist {:?}\ntime {} energy {energies:?}",
            outcome.dist,
            net.lb_time()
        )
    };
    for seed in SEEDS {
        assert_eq!(
            run(seed),
            run(seed),
            "recursive BFS diverged for seed {seed}"
        );
    }
}

#[test]
fn cd_decay_local_broadcast_is_seed_deterministic_across_runs() {
    // The CD-aware decay path, byte-identical per seed: deliveries, the
    // per-receiver feedback verdicts, slots used, and the energy report.
    use radio_energy::sim::{decay_local_broadcast_cd, CollisionDetection};
    let n = 48;
    let g = generators::grid(6, 8);
    let params = DecayParams::for_network(n, g.max_degree());
    let run = |seed: u64| -> String {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut net: RadioNetwork<u64> =
            RadioNetwork::new(g.clone()).with_collision_detection(CollisionDetection::Receiver);
        let mut frame: RoundFrame<u64> = RoundFrame::new(n);
        let mut scratch: DecayScratch<u64> = DecayScratch::new(n);
        let mut log = String::new();
        for round in 0..4u64 {
            frame.clear();
            for v in 0..n {
                if (v as u64 + round).is_multiple_of(5) {
                    frame.add_sender(v, v as u64);
                } else {
                    frame.add_receiver(v);
                }
            }
            let slots =
                decay_local_broadcast_cd(&mut net, &mut frame, &mut scratch, params, &mut rng);
            let delivered: Vec<(usize, u64)> =
                frame.delivered().iter().map(|(v, &m)| (v, m)).collect();
            let verdicts: Vec<(usize, String)> = frame
                .feedback()
                .iter()
                .map(|(v, fb)| (v, format!("{fb:?}")))
                .collect();
            log.push_str(&format!(
                "round {round}: slots {slots} got {delivered:?} verdicts {verdicts:?}\n"
            ));
        }
        log.push_str(&format!("{:?}", net.report()));
        log
    };
    for seed in SEEDS {
        assert_eq!(run(seed), run(seed), "CD decay diverged for seed {seed}");
    }
}

#[test]
fn parallel_scenario_runner_is_thread_count_invariant_on_the_default_sweep() {
    // The determinism-conformance contract of the worker pool: every
    // default scenario, run at 1, 2 and 8 threads, produces byte-identical
    // JSON. Results are collected by work-item index (never completion
    // order), so this must hold exactly; on failure the assertion names the
    // first diverging record rather than dumping two multi-hundred-line
    // JSON blobs.
    use radio_bench::scenarios::{
        default_scenarios, records_to_json, run_scenarios_with, RunnerConfig,
    };
    let scenarios = default_scenarios();
    let reference = run_scenarios_with(&scenarios, &RunnerConfig::serial());
    let reference_json = records_to_json(&reference);
    for threads in [2usize, 8] {
        let parallel = run_scenarios_with(&scenarios, &RunnerConfig::with_threads(threads));
        assert_eq!(
            parallel.len(),
            reference.len(),
            "threads={threads}: record count diverged"
        );
        if let Some((i, (serial_rec, parallel_rec))) = reference
            .iter()
            .zip(&parallel)
            .enumerate()
            .find(|(_, (a, b))| a != b)
        {
            panic!(
                "threads={threads}: first diverging record is #{i} \
                 (scenario {:?}, n {}, seed {}):\n  serial:   {serial_rec:?}\n  parallel: {parallel_rec:?}",
                serial_rec.scenario, serial_rec.n, serial_rec.seed
            );
        }
        assert_eq!(
            records_to_json(&parallel),
            reference_json,
            "threads={threads}: records agree but JSON bytes diverged"
        );
    }
}

#[test]
fn registry_dispatched_protocols_are_seed_deterministic_across_runs() {
    // The Protocol surface on top of the stacks: resolving a spec and
    // running it twice with the same seed must reproduce the full report —
    // payload, outcome, and every energy counter — on both the abstract and
    // the physical-CD backend (the latter exercising the CD wavefront's
    // verdict handling end to end).
    use radio_energy::bfs::protocol::registry;
    use radio_energy::protocols::{EnergyModel, ProtocolInput};
    let g = generators::grid(7, 7);
    let registry = registry();
    for spec in [
        "trivial_bfs",
        "trivial_bfs_cd",
        "decay_bfs",
        "clustering:b=3",
    ] {
        let run = |seed: u64, physical: bool| -> String {
            let protocol = registry.get(spec).expect("spec resolves");
            let builder = StackBuilder::new(g.clone()).with_seed(seed);
            let builder = if physical {
                builder.physical(EnergyModel::Uniform)
            } else {
                builder
            };
            let mut net = if physical || protocol.requires().collision_detection.is_receiver() {
                builder.with_cd().build()
            } else {
                builder.build()
            };
            let report = protocol
                .run(&mut net, &ProtocolInput::from_seed(seed))
                .expect("capabilities satisfied");
            format!(
                "{} outcome {} json {} energy {:?}",
                report.protocol,
                report.outcome(),
                report.to_json(),
                (0..g.num_nodes())
                    .map(|v| report.energy.lb_energy(v))
                    .collect::<Vec<_>>()
            )
        };
        for seed in SEEDS {
            for physical in [false, true] {
                assert_eq!(
                    run(seed, physical),
                    run(seed, physical),
                    "{spec} diverged for seed {seed} (physical={physical})"
                );
            }
        }
    }
}

#[test]
fn physical_cd_stack_is_seed_deterministic_across_runs() {
    // The same guarantee one layer up: a physical_cd stack driving the
    // CD-aware decay through the RadioStack surface, including the unified
    // energy view.
    use radio_energy::protocols::EnergyModel;
    let g = generators::grid(5, 5);
    let run = |seed: u64| -> String {
        let mut net = StackBuilder::new(g.clone())
            .physical(EnergyModel::Uniform)
            .with_cd()
            .with_seed(seed)
            .build();
        let mut frame = net.new_frame();
        let mut log = String::new();
        for round in 0..3u64 {
            frame.clear();
            for v in 0..25usize {
                if (v as u64 + round).is_multiple_of(6) {
                    frame.add_sender(v, Msg::words(&[v as u64]));
                } else {
                    frame.add_receiver(v);
                }
            }
            net.local_broadcast(&mut frame);
            let delivered: Vec<(usize, u64)> = frame
                .delivered()
                .iter()
                .map(|(v, m)| (v, m.word(0)))
                .collect();
            let verdicts: Vec<(usize, String)> = frame
                .feedback()
                .iter()
                .map(|(v, fb)| (v, format!("{fb:?}")))
                .collect();
            log.push_str(&format!("round {round}: {delivered:?} / {verdicts:?}\n"));
        }
        let view = net.energy_view();
        let energies: Vec<(u64, Option<u64>)> = (0..25)
            .map(|v| (view.lb_energy(v), view.physical_energy(v)))
            .collect();
        log.push_str(&format!(
            "time {} slots {:?} energy {energies:?}",
            view.lb_time(),
            view.physical_slots()
        ));
        log
    };
    for seed in SEEDS {
        assert_eq!(
            run(seed),
            run(seed),
            "physical_cd stack diverged for seed {seed}"
        );
    }
}
