//! Integration tests spanning all crates: the physical `RN[b]` simulator,
//! the Local-Broadcast protocol layer, and the recursive BFS, exercised
//! together the way a deployment would compose them.

use radio_energy::bfs::baseline::{decay_bfs, trivial_bfs};
use radio_energy::bfs::protocol::registry;
use radio_energy::bfs::{build_hierarchy, recursive_bfs_with_hierarchy, RecursiveBfsConfig};
use radio_energy::graph::bfs::bfs_distances;
use radio_energy::graph::generators;
use radio_energy::protocols::{
    EnergyModel, ProtocolError, ProtocolInput, RadioStack, StackBuilder,
};

/// The recursive BFS, run end-to-end on the *physical* backend: every
/// Local-Broadcast expands into Decay slots with real collisions, and the
/// labelling must still match the centralized reference.
#[test]
fn recursive_bfs_on_the_physical_simulator_matches_reference() {
    let g = generators::grid(8, 8);
    let truth = bfs_distances(&g, 0);
    let depth = *truth.iter().max().unwrap() as u64;

    let config = RecursiveBfsConfig {
        inv_beta: 4,
        max_depth: 1,
        trivial_cutoff: 4,
        seed: 31,
        ..Default::default()
    };
    let mut net = StackBuilder::new(g.clone())
        .physical(EnergyModel::Uniform)
        .with_seed(12345)
        .build();
    let hierarchy = build_hierarchy(&mut net, &config);
    let outcome = recursive_bfs_with_hierarchy(&mut net, &hierarchy, &[0], depth, &config, &[]);

    for v in g.nodes() {
        assert_eq!(
            outcome.dist[v],
            Some(truth[v] as u64),
            "vertex {v}: physical run disagrees with the centralized BFS"
        );
    }
    // Physical energy is the LB-unit energy blown up by the Lemma 2.4 slot
    // cost — strictly larger, and time advanced by whole Decay windows. The
    // unified view carries both unit systems in one snapshot.
    let view = net.energy_view();
    assert!(view.max_physical_energy().unwrap() > view.max_lb_energy());
    assert!(view.physical_slots().unwrap() >= view.lb_time());
}

/// The same protocol run on the abstract and on the physical backend charges
/// identical Local-Broadcast-unit energy (the physical backend only changes
/// what a unit costs in slots), so the paper's unit of analysis is
/// backend-independent.
#[test]
fn lb_unit_accounting_is_backend_independent() {
    let g = generators::path(40);
    let config = RecursiveBfsConfig {
        inv_beta: 4,
        max_depth: 1,
        trivial_cutoff: 4,
        seed: 7,
        ..Default::default()
    };

    let mut abstract_net = StackBuilder::new(g.clone()).build();
    let active = vec![true; g.num_nodes()];
    let _ = trivial_bfs(&mut abstract_net, &[0], &active, 39);

    let mut physical_net = StackBuilder::new(g.clone())
        .physical(EnergyModel::Uniform)
        .with_seed(99)
        .build();
    let _ = trivial_bfs(&mut physical_net, &[0], &active, 39);

    // The trivial wavefront makes exactly the same calls with the same
    // participant sets on both backends (delivery randomness cannot change
    // who participates, only what is heard — and decay delivers w.h.p.).
    assert_eq!(abstract_net.lb_time(), physical_net.lb_time());
    for v in g.nodes() {
        assert_eq!(
            abstract_net.lb_energy(v),
            physical_net.lb_energy(v),
            "vertex {v} charged differently on the two backends"
        );
    }
    // Sanity on the recursive configuration too: it must at least build the
    // same-shaped hierarchy on both backends.
    let mut a2 = StackBuilder::new(g.clone()).build();
    let ha = build_hierarchy(&mut a2, &config);
    let mut p2 = StackBuilder::new(g)
        .physical(EnergyModel::Uniform)
        .with_seed(99)
        .build();
    let hp = build_hierarchy(&mut p2, &config);
    assert_eq!(ha.len(), hp.len());
}

/// Decay-BFS (the classical baseline) against the recursive algorithm on the
/// same abstract backend: both produce correct labels; the baseline's
/// per-vertex energy equals the eccentricity while the recursive algorithm's
/// wavefront participation (Claim 1) stays far below the stage count.
#[test]
fn baseline_and_recursive_bfs_agree_on_labels() {
    let g = generators::caterpillar(60, 2);
    let truth = bfs_distances(&g, 0);
    let depth = *truth.iter().max().unwrap() as u64;

    let mut baseline_net = StackBuilder::new(g.clone()).build();
    let baseline = decay_bfs(&mut baseline_net, 0);

    let config = RecursiveBfsConfig {
        inv_beta: 8,
        max_depth: 1,
        trivial_cutoff: 8,
        seed: 3,
        ..Default::default()
    };
    let mut recursive_net = StackBuilder::new(g.clone()).build();
    let hierarchy = build_hierarchy(&mut recursive_net, &config);
    let outcome =
        recursive_bfs_with_hierarchy(&mut recursive_net, &hierarchy, &[0], depth, &config, &[]);

    for v in g.nodes() {
        assert_eq!(baseline.dist[v], Some(truth[v] as u64));
        assert_eq!(outcome.dist[v], Some(truth[v] as u64));
    }
    // Baseline: the farthest vertex listened in every sweep.
    assert_eq!(baseline_net.max_lb_energy(), depth);
}

/// The whole registry, end to end on the physical simulator: every
/// registered spec resolves, passes its capability gate on a suitably built
/// stack, labels/clusters/delivers something sensible, and reports
/// slot-level energy through the unified report.
#[test]
fn every_registered_protocol_runs_end_to_end_on_the_physical_backend() {
    let g = generators::grid(8, 8);
    let registry = registry();
    for spec in [
        "trivial_bfs",
        "trivial_bfs_cd",
        "decay_bfs",
        "recursive",
        "clustering:b=4",
        "lb_sweep:r=8",
    ] {
        let protocol = registry.get(spec).expect("spec resolves");
        let builder = StackBuilder::new(g.clone())
            .physical(EnergyModel::Uniform)
            .with_seed(13);
        let mut stack = if protocol.requires().collision_detection.is_receiver() {
            builder.with_cd().build()
        } else {
            builder.build()
        };
        let report = protocol
            .run(&mut stack, &ProtocolInput::from_seed(13))
            .unwrap_or_else(|e| panic!("{spec}: {e}"));
        assert!(report.outcome() >= 1, "{spec}: empty outcome");
        assert!(report.lb_calls() >= 1, "{spec}: no Local-Broadcasts");
        assert!(
            report.energy.max_physical_energy().unwrap() > 0,
            "{spec}: no slot-level energy on a physical stack"
        );
        if let Some(dist) = report.output.distances() {
            let truth = bfs_distances(&g, 0);
            let correct = g
                .nodes()
                .filter(|&v| dist[v] == Some(truth[v] as u64))
                .count();
            assert!(
                correct + 2 >= g.num_nodes(),
                "{spec}: only {correct}/{} labels correct",
                g.num_nodes()
            );
        }
    }
}

/// The capability gate across the whole backend matrix: the CD wavefront
/// refuses `abstract` and `physical` stacks with a typed error (never a
/// panic) and runs on `abstract_cd` and `physical_cd`.
#[test]
fn cd_capability_gate_spans_the_backend_matrix() {
    let g = generators::path(12);
    let protocol = registry().get("trivial_bfs_cd").expect("spec resolves");
    let build = |physical: bool, cd: bool| {
        let b = StackBuilder::new(g.clone()).with_seed(2);
        let b = if physical {
            b.physical(EnergyModel::Uniform)
        } else {
            b
        };
        if cd {
            b.with_cd().build()
        } else {
            b.build()
        }
    };
    for (physical, label) in [(false, "abstract"), (true, "physical")] {
        let mut refused = build(physical, false);
        match protocol.run(&mut refused, &ProtocolInput::from_seed(2)) {
            Err(ProtocolError::MissingCapability { available, .. }) => {
                assert_eq!(available, label)
            }
            Ok(_) => panic!("{label}: ran without CD"),
            Err(e) => panic!("{label}: wrong error {e}"),
        }
        assert_eq!(refused.lb_time(), 0, "{label}: gate fired after calls");
        let mut allowed = build(physical, true);
        let report = protocol
            .run(&mut allowed, &ProtocolInput::from_seed(2))
            .expect("CD stack passes");
        assert_eq!(report.outcome(), 12);
    }
}

/// A full-stack smoke test on the physical simulator with collision
/// detection enabled at the channel level (the algorithms never rely on it,
/// per the paper's weakest-model assumption, but it must not break them).
#[test]
fn physical_run_with_small_world_topology() {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
    let (g, _) =
        generators::connected_unit_disc(120, 11.0, 2.0, 300, &mut rng).expect("connected field");
    let truth = bfs_distances(&g, 5);
    let depth = *truth.iter().max().unwrap() as u64;

    let config = RecursiveBfsConfig {
        inv_beta: 4,
        max_depth: 1,
        trivial_cutoff: 4,
        seed: 21,
        ..Default::default()
    };
    let mut net = StackBuilder::new(g.clone())
        .physical(EnergyModel::Uniform)
        .with_seed(7)
        .build();
    let hierarchy = build_hierarchy(&mut net, &config);
    let outcome = recursive_bfs_with_hierarchy(&mut net, &hierarchy, &[5], depth, &config, &[]);
    let correct = g
        .nodes()
        .filter(|&v| outcome.dist[v] == Some(truth[v] as u64))
        .count();
    // Decay delivery is w.h.p., not certain; demand near-perfect agreement.
    assert!(
        correct + 2 >= g.num_nodes(),
        "only {correct}/{} labels correct on the physical backend",
        g.num_nodes()
    );
}
