//! Failure-injection tests: the paper's primitives are specified to work
//! with probability `1 − 1/poly(n)` per Local-Broadcast; these tests inject
//! much harsher failure rates and check that the protocols degrade the way
//! the design intends (structural invariants never break, coverage degrades
//! gracefully, and correctness returns once the failure rate is polynomial).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use radio_energy::bfs::baseline::trivial_bfs;
use radio_energy::bfs::{build_hierarchy, recursive_bfs_with_hierarchy, RecursiveBfsConfig};
use radio_energy::graph::bfs::bfs_distances;
use radio_energy::graph::generators;
use radio_energy::protocols::broadcast::layered_broadcast;
use radio_energy::protocols::{cluster_distributed, ClusteringConfig, Msg, StackBuilder};

/// Clustering under 30% message loss still produces a structurally valid
/// partition (every vertex ends up in a connected cluster with consistent
/// layers) — vertices that never hear anything become their own clusters.
#[test]
fn clustering_survives_heavy_loss() {
    let g = generators::grid(10, 10);
    for seed in 0..3u64 {
        let mut net = StackBuilder::new(g.clone())
            .with_failures(0.3)
            .with_seed(seed)
            .build();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let state = cluster_distributed(&mut net, &ClusteringConfig::new(4), &mut rng);
        state
            .validate()
            .expect("structural invariants must survive loss");
        assert_eq!(state.cluster_sizes().iter().sum::<usize>(), 100);
    }
}

/// Layered broadcast with a lossy channel: coverage degrades with the loss
/// rate but never produces a *wrong* payload, and with a tiny loss rate it
/// reaches everyone.
#[test]
fn broadcast_degrades_gracefully_and_never_corrupts() {
    let g = generators::grid(9, 9);
    let labels = bfs_distances(&g, 0);

    let coverage = |failure: f64, seed: u64| -> usize {
        let mut net = StackBuilder::new(g.clone())
            .with_failures(failure)
            .with_seed(seed)
            .build();
        let out = layered_broadcast(&mut net, &labels, &Msg::words(&[7]));
        for m in out.iter().flatten() {
            assert_eq!(m.word(0), 7, "corrupted payload");
        }
        out.iter().filter(|m| m.is_some()).count()
    };

    let lossy: usize = (0..3).map(|s| coverage(0.4, s)).sum();
    let near_perfect: usize = (0..3).map(|s| coverage(0.001, 100 + s)).sum();
    assert!(near_perfect > lossy, "loss should reduce coverage");
    assert_eq!(
        near_perfect,
        3 * g.num_nodes(),
        "negligible loss must reach everyone"
    );
}

/// The CD wavefront under heavy loss, dispatched through the registry: a
/// failed delivery surfaces as a `Noise` verdict, which pins the distance
/// exactly (a sending neighbour exists at the current step), so
/// `trivial_bfs_cd` recovers the *exact* labelling at loss rates where the
/// no-CD wavefront visibly degrades.
#[test]
fn cd_wavefront_is_exact_under_heavy_loss() {
    use radio_energy::bfs::protocol::registry;
    use radio_energy::protocols::ProtocolInput;
    let g = generators::grid(8, 8);
    let truth = bfs_distances(&g, 0);
    let protocol = registry().get("trivial_bfs_cd").expect("spec resolves");
    for seed in 0..4u64 {
        let mut net = StackBuilder::new(g.clone())
            .with_cd()
            .with_failures(0.5)
            .with_seed(seed)
            .build();
        let report = protocol
            .run(&mut net, &ProtocolInput::from_seed(seed))
            .expect("abstract_cd satisfies the CD requirement");
        let dist = report.output.distances().expect("BFS output");
        for v in g.nodes() {
            assert_eq!(
                dist[v],
                Some(truth[v] as u64),
                "seed {seed}: vertex {v} mislabelled despite CD recovery"
            );
        }
    }
}

/// The trivial wavefront BFS with loss: settled distances are never wrong
/// (they can only be missing or — when a shorter path's message was lost —
/// overestimated is impossible because a vertex only adopts a value the
/// round it hears it, which is always a true path length).
#[test]
fn lossy_wavefront_never_underestimates_distance() {
    let g = generators::grid(8, 8);
    let truth = bfs_distances(&g, 0);
    for seed in 0..4u64 {
        let mut net = StackBuilder::new(g.clone())
            .with_failures(0.25)
            .with_seed(seed)
            .build();
        let active = vec![true; g.num_nodes()];
        let result = trivial_bfs(&mut net, &[0], &active, 40);
        for v in g.nodes() {
            if let Some(d) = result.dist[v] {
                assert!(
                    d >= truth[v] as u64,
                    "vertex {v} settled at {d}, below the true distance {}",
                    truth[v]
                );
            }
        }
    }
}

/// The full recursive BFS with a polynomial failure rate (the regime the
/// paper's `f = 1/poly(n)` guarantees are stated for): the labelling still
/// matches the reference exactly.
#[test]
fn recursive_bfs_with_polynomial_failure_rate_is_still_exact() {
    let g = generators::path(150);
    let truth = bfs_distances(&g, 0);
    let n = g.num_nodes() as f64;
    let f = n.powi(-3);
    let config = RecursiveBfsConfig {
        inv_beta: 8,
        max_depth: 1,
        trivial_cutoff: 8,
        seed: 77,
        ..Default::default()
    };
    let mut net = StackBuilder::new(g.clone())
        .with_failures(f)
        .with_seed(5)
        .build();
    let hierarchy = build_hierarchy(&mut net, &config);
    let outcome = recursive_bfs_with_hierarchy(&mut net, &hierarchy, &[0], 149, &config, &[]);
    for v in g.nodes() {
        assert_eq!(outcome.dist[v], Some(truth[v] as u64), "vertex {v}");
    }
}

/// The recursive BFS under unrealistically heavy loss (5%) may miss
/// vertices, but every label it does produce is a true distance — the
/// verification property the paper's introduction highlights (a BFS
/// labelling is cheap to verify).
#[test]
fn recursive_bfs_under_heavy_loss_never_lies() {
    let g = generators::grid(10, 10);
    let truth = bfs_distances(&g, 0);
    let config = RecursiveBfsConfig {
        inv_beta: 4,
        max_depth: 1,
        trivial_cutoff: 4,
        seed: 3,
        ..Default::default()
    };
    let mut net = StackBuilder::new(g.clone())
        .with_failures(0.05)
        .with_seed(11)
        .build();
    let hierarchy = build_hierarchy(&mut net, &config);
    let outcome = recursive_bfs_with_hierarchy(&mut net, &hierarchy, &[0], 30, &config, &[]);
    for v in g.nodes() {
        if let Some(d) = outcome.dist[v] {
            assert!(
                d >= truth[v] as u64,
                "vertex {v} labelled {d} below its true distance {}",
                truth[v]
            );
        }
    }
}
