//! Integration tests that check the paper's quantitative claims end-to-end,
//! with the distributed (Lemma 2.5) clustering rather than the centralized
//! reference implementation.

use std::collections::HashSet;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use radio_energy::bfs::diameter::{three_halves_approx_diameter, two_approx_diameter};
use radio_energy::bfs::hardness::{edge_probing_protocol, GoodSlotAccounting};
use radio_energy::bfs::RecursiveBfsConfig;
use radio_energy::graph::cluster_graph::{distance_proxy_stats, lemma_2_1_bound, ClusterGraph};
use radio_energy::graph::diameter::{exact_diameter, satisfies_theorem_5_4_bound};
use radio_energy::graph::generators;
use radio_energy::graph::lower_bound::build_disjointness_graph;
use radio_energy::protocols::{cluster_distributed, ClusteringConfig, RadioStack, StackBuilder};

/// Lemma 2.2, with the clustering produced by the *distributed* protocol:
/// cluster-graph distances stay inside the paper's interval for every
/// sampled pair, across several random graphs and seeds.
#[test]
fn lemma_2_2_holds_for_distributed_clusterings() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let mut total_pairs = 0usize;
    let mut violations = 0usize;
    for trial in 0..4u64 {
        let g = generators::connected_gnp(150, 0.04, 300, &mut rng).expect("connected sample");
        let cfg = ClusteringConfig::new(4);
        let mut net = StackBuilder::new(g.clone()).build();
        let mut crng = ChaCha8Rng::seed_from_u64(100 + trial);
        let state = cluster_distributed(&mut net, &cfg, &mut crng);
        let cg = ClusterGraph::build(&g, state.to_graph_clustering());
        let pairs: Vec<(usize, usize)> = (0..g.num_nodes())
            .step_by(11)
            .flat_map(|u| (0..g.num_nodes()).step_by(13).map(move |v| (u, v)))
            .collect();
        let stats = distance_proxy_stats(&g, &cg, &pairs, 4.0);
        total_pairs += stats.pairs;
        violations += stats.violations;
    }
    assert!(total_pairs > 100);
    assert_eq!(
        violations, 0,
        "Lemma 2.2 interval violated {violations} times"
    );
}

/// Lemma 2.1: the probability that a ball intersects more than `j` clusters
/// decays like `(1 − e^{−2ℓβ})^j`; empirically, with `j` a small multiple of
/// the expectation the event should essentially never happen.
#[test]
fn lemma_2_1_tail_is_respected_by_distributed_clusterings() {
    let g = generators::grid(18, 18);
    let cfg = ClusteringConfig::new(4);
    let ell = cfg.inverse_beta() as u32;
    let j = (9.0 * (g.num_nodes() as f64).ln()).ceil() as usize;
    // The analytic bound at this j is tiny: (1 − e^{−2})^j with j ≈ 9·ln n.
    assert!(lemma_2_1_bound(cfg.beta, ell as f64, j as u32) < 2e-3);
    let mut exceed = 0usize;
    for trial in 0..10u64 {
        let mut net = StackBuilder::new(g.clone()).build();
        let mut rng = ChaCha8Rng::seed_from_u64(trial);
        let state = cluster_distributed(&mut net, &cfg, &mut rng);
        let clustering = state.to_graph_clustering();
        for probe in [0usize, 57, 200, 323] {
            if clustering.ball_cluster_intersections(&g, probe, ell) > j {
                exceed += 1;
            }
        }
    }
    assert_eq!(exceed, 0);
}

/// The diameter approximations meet their guarantees on random connected
/// graphs (not just the structured families used in unit tests).
#[test]
fn diameter_guarantees_on_random_graphs() {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let config = RecursiveBfsConfig {
        inv_beta: 4,
        max_depth: 1,
        trivial_cutoff: 8,
        seed: 13,
        ..Default::default()
    };
    for trial in 0..3u64 {
        let g = generators::connected_gnp(70, 0.07, 300, &mut rng).expect("connected sample");
        let diam = exact_diameter(&g).unwrap();

        let mut net2 = StackBuilder::new(g.clone()).build();
        let est2 = two_approx_diameter(&mut net2, &config);
        assert!(est2.estimate <= diam as u64);
        assert!(
            2 * est2.estimate >= diam as u64,
            "trial {trial}: 2-approx too small"
        );

        let mut net32 = StackBuilder::new(g.clone()).build();
        let est32 = three_halves_approx_diameter(&mut net32, &config, 55 + trial);
        assert!(
            satisfies_theorem_5_4_bound(diam, est32.estimate as u32),
            "trial {trial}: 3/2-approx {} outside bound for diameter {diam}",
            est32.estimate
        );
    }
}

/// Theorem 5.1's counting inequality `|X_good| ≤ 2·(total energy)` holds on
/// every trace, and the success upper bound scales linearly with the energy
/// budget until it saturates.
#[test]
fn good_slot_bound_scales_with_budget() {
    let n = 48;
    let g = generators::complete(n);
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let mut last_bound = 0.5;
    for budget in [2u64, 8, 32, 128] {
        let (trace, _) = edge_probing_protocol(&g, budget, &mut rng);
        let acc = GoodSlotAccounting::evaluate(n, &trace);
        assert!(acc.satisfies_energy_inequality());
        assert!(acc.success_upper_bound >= last_bound - 0.05);
        last_bound = acc.success_upper_bound;
    }
    // With a tiny budget the bound is near 1/2; the theorem's point.
    let (trace, _) = edge_probing_protocol(&g, 1, &mut rng);
    let acc = GoodSlotAccounting::evaluate(n, &trace);
    assert!(acc.success_upper_bound < 0.55);
}

/// The Theorem 5.2 construction is simultaneously (a) a faithful encoding of
/// set-disjointness in the diameter, (b) sparse, and (c) small — all three
/// properties the reduction needs, across random instances.
#[test]
fn disjointness_construction_properties_hold_on_random_instances() {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    use rand::Rng;
    for _ in 0..6 {
        let ell = 6u32;
        let k = 1u64 << ell;
        let size_a = rng.gen_range(3..20);
        let size_b = rng.gen_range(3..20);
        let set_a: HashSet<u64> = (0..size_a).map(|_| rng.gen_range(0..k)).collect();
        let set_b: HashSet<u64> = (0..size_b).map(|_| rng.gen_range(0..k)).collect();
        let set_a: Vec<u64> = set_a.into_iter().collect();
        let set_b: Vec<u64> = set_b.into_iter().collect();
        let instance = build_disjointness_graph(&set_a, &set_b, ell);
        let diam = exact_diameter(&instance.graph).unwrap();
        assert_eq!(diam, instance.predicted_diameter());
        assert_eq!(
            instance.sets_disjoint(),
            diam == 2,
            "diameter does not encode disjointness"
        );
        // Sparsity: degeneracy O(log n).
        let degen = radio_energy::graph::arboricity::degeneracy(&instance.graph);
        let n = instance.graph.num_nodes() as f64;
        assert!((degen as f64) <= 6.0 * n.log2());
        // Size: n = α + β + 2ℓ + 2.
        assert_eq!(
            instance.graph.num_nodes(),
            set_a.len() + set_b.len() + 2 * ell as usize + 2
        );
    }
}

/// The "other energy models" discussion: under
/// `EnergyModel::Weighted { listen, transmit }`, a device's physical energy
/// is *defined* as `listen_w · listens + transmit_w · transmits`. On a
/// fixed sweep, the `EnergyView` weighted totals must equal exactly that,
/// recomputed from the raw slot counters, on both physical backends (plain
/// Decay and the CD-aware variant) — i.e. weighting happens at read time
/// and never perturbs the slot-level execution.
#[test]
fn weighted_energy_model_matches_raw_counter_recomputation() {
    use radio_energy::protocols::EnergyModel;
    let (listen_w, transmit_w) = (2u64, 5u64);
    let model = EnergyModel::Weighted {
        listen: listen_w,
        transmit: transmit_w,
    };
    let g = generators::grid(6, 6);
    let n = g.num_nodes();
    for cd in [false, true] {
        let mut builder = StackBuilder::new(g.clone()).physical(model).with_seed(9);
        if cd {
            builder = builder.with_cd();
        }
        let mut net = builder.build();
        // A fixed 6-round sweep: rotating sender block, everyone else
        // listening — every node pays both listen and transmit slots.
        let mut frame = net.new_frame();
        for round in 0..6u64 {
            frame.clear();
            for v in 0..n {
                if (v as u64 + round).is_multiple_of(6) {
                    frame.add_sender(v, radio_energy::protocols::Msg::words(&[round]));
                } else {
                    frame.add_receiver(v);
                }
            }
            net.local_broadcast(&mut frame);
        }
        let view = net.energy_view();
        assert_eq!(view.energy_model(), model);
        // Per-node: the view's weighted energy equals the definition,
        // recomputed from the raw (model-independent) slot counters — both
        // as exposed by the view and as read off the simulator's meter.
        let meter = match &net {
            radio_energy::protocols::Stack::Physical(p) => p.radio().meter(),
            radio_energy::protocols::Stack::Abstract(_) => unreachable!("physical build"),
        };
        let mut total = 0u64;
        let mut some_node_transmitted = false;
        for v in 0..n {
            let listens = view.listen_slots(v).expect("physical view");
            let transmits = view.transmit_slots(v).expect("physical view");
            assert_eq!(listens, meter.listen_count(v), "cd={cd} node {v}");
            assert_eq!(transmits, meter.transmit_count(v), "cd={cd} node {v}");
            let expected = listen_w * listens + transmit_w * transmits;
            assert_eq!(
                view.physical_energy(v),
                Some(expected),
                "cd={cd} node {v}: weighted energy must be {listen_w}·{listens} + {transmit_w}·{transmits}"
            );
            some_node_transmitted |= transmits > 0;
            total += expected;
        }
        assert!(
            some_node_transmitted,
            "cd={cd}: sweep exercised no transmit"
        );
        assert_eq!(view.total_physical_energy(), Some(total), "cd={cd}");
        assert_eq!(
            view.max_physical_energy(),
            (0..n).filter_map(|v| view.physical_energy(v)).max(),
            "cd={cd}"
        );
    }
}

/// The E-series weight-ratio claim (the paper's "other energy models"
/// discussion), checked through the registry surface the sweep uses: the
/// same protocol per seed runs an identical slot schedule under the 1:1,
/// 1:4, and 4:1 listen:transmit ratios, the weighted totals decompose as
/// `listen_w·listens + transmit_w·transmits`, and on listen-bound
/// wavefronts the listen-heavy radio is the most expensive of the three.
#[test]
fn eseries_weight_ratios_reweight_a_fixed_slot_schedule() {
    use radio_energy::protocols::{EnergyModel, ProtocolInput};
    let g = generators::grid(8, 8);
    let registry = radio_energy::bfs::protocol::registry();
    for spec in ["trivial_bfs", "decay_bfs"] {
        let protocol = registry.get(spec).expect("spec resolves");
        let run = |model: EnergyModel, seed: u64| {
            let mut net = StackBuilder::new(g.clone())
                .physical(model)
                .with_seed(seed)
                .build();
            protocol
                .run(&mut net, &ProtocolInput::from_seed(seed))
                .expect("physical stacks satisfy the wavefront requirements")
        };
        for seed in 0..3u64 {
            let uniform = run(EnergyModel::Uniform, seed);
            let tx_heavy = run(
                EnergyModel::Weighted {
                    listen: 1,
                    transmit: 4,
                },
                seed,
            );
            let rx_heavy = run(
                EnergyModel::Weighted {
                    listen: 4,
                    transmit: 1,
                },
                seed,
            );
            // Identical slot schedule: the model is applied at read time.
            assert_eq!(uniform.physical_slots(), tx_heavy.physical_slots());
            assert_eq!(uniform.physical_slots(), rx_heavy.physical_slots());
            assert_eq!(uniform.outcome(), tx_heavy.outcome());
            assert_eq!(uniform.outcome(), rx_heavy.outcome());
            // Weighted totals decompose over the raw counters.
            for report in [&uniform, &tx_heavy, &rx_heavy] {
                let (lw, tw) = match report.energy.energy_model() {
                    EnergyModel::Uniform => (1, 1),
                    EnergyModel::Weighted { listen, transmit } => (listen, transmit),
                };
                for v in 0..g.num_nodes() {
                    let listens = report.energy.listen_slots(v).unwrap();
                    let transmits = report.energy.transmit_slots(v).unwrap();
                    assert_eq!(
                        report.energy.physical_energy(v),
                        Some(lw * listens + tw * transmits),
                        "{spec} seed {seed} node {v}"
                    );
                }
            }
            // Wavefront receivers listen far more than they transmit.
            let u = uniform.energy.max_physical_energy().unwrap();
            let t = tx_heavy.energy.max_physical_energy().unwrap();
            let r = rx_heavy.energy.max_physical_energy().unwrap();
            assert!(t > u, "{spec} seed {seed}: 1:4 must exceed uniform");
            assert!(r > t, "{spec} seed {seed}: 4:1 must dominate ({r} vs {t})");
        }
    }
}

/// Clustering energy matches Lemma 2.5's budget (at most the number of
/// growth rounds, in Local-Broadcast units) on a variety of topologies.
#[test]
fn clustering_energy_budget_lemma_2_5() {
    let graphs = vec![
        generators::grid(12, 12),
        generators::cycle(150),
        generators::complete_k_ary_tree(3, 5),
        generators::caterpillar(40, 3),
    ];
    for g in graphs {
        let cfg = ClusteringConfig::new(6);
        let mut net = StackBuilder::new(g.clone()).build();
        let mut rng = ChaCha8Rng::seed_from_u64(g.num_nodes() as u64);
        let state = cluster_distributed(&mut net, &cfg, &mut rng);
        state.validate().unwrap();
        let rounds = cfg.rounds(net.global_n());
        assert!(net.lb_time() <= rounds);
        assert!(net.max_lb_energy() <= rounds);
    }
}
