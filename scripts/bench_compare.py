#!/usr/bin/env python3
"""Collect and compare BENCH_*.json files.

Two modes:

  collect   Read raw `BENCH_JSON=1 cargo bench` output (stdin or a file)
            and write the canonical wrapped JSON format used by
            BENCH_baseline.json / BENCH_pr2.json.

                BENCH_JSON=1 cargo bench 2>&1 | \
                    python3 scripts/bench_compare.py collect -o BENCH_pr2.json

  compare   Diff two recorded files (or a recorded file against raw bench
            output) and print per-bench ratios new/old.

                python3 scripts/bench_compare.py compare \
                    BENCH_baseline.json BENCH_pr2.json

`compare` exits 0 always by default (timings on shared CI boxes are noisy;
the table is informational). Pass --fail-above R to exit 1 if any common
bench regressed by more than a factor of R.
"""

import argparse
import json
import platform
import re
import subprocess
import sys
from datetime import date

LINE_RE = re.compile(r'^\{"bench":.*\}$')


def parse_benches(text):
    """Extract bench records from raw bench output or a wrapped JSON file."""
    text = text.strip()
    if text.startswith("{"):
        try:
            doc = json.loads(text)
            if isinstance(doc, dict) and "benches" in doc:
                return doc["benches"]
        except json.JSONDecodeError:
            pass
    benches = []
    for line in text.splitlines():
        line = line.strip()
        if LINE_RE.match(line):
            benches.append(json.loads(line))
    return benches


def rustc_version():
    try:
        return subprocess.run(
            ["rustc", "--version"], capture_output=True, text=True, check=True
        ).stdout.strip()
    except Exception:
        return "unknown"


def cmd_collect(args):
    text = sys.stdin.read() if args.input == "-" else open(args.input).read()
    benches = parse_benches(text)
    if not benches:
        print("no bench records found in input", file=sys.stderr)
        return 1
    doc = {
        "meta": {
            "date": date.today().isoformat(),
            "rustc": rustc_version(),
            "os": platform.platform(),
            "command": "BENCH_JSON=1 cargo bench",
            "note": (
                "Vendored criterion stand-in: mean of sample_size timed "
                "iterations after one warm-up; compare order of magnitude, "
                "not microseconds."
            ),
        },
        "benches": benches,
    }
    out = json.dumps(doc, indent=2) + "\n"
    if args.output:
        open(args.output, "w").write(out)
        print(f"wrote {len(benches)} benches to {args.output}")
    else:
        sys.stdout.write(out)
    return 0


def cmd_compare(args):
    old = {b["bench"]: b["mean_ns"] for b in parse_benches(open(args.old).read())}
    new = {b["bench"]: b["mean_ns"] for b in parse_benches(open(args.new).read())}
    common = sorted(set(old) & set(new))
    if not common:
        print("no common benches between the two files", file=sys.stderr)
        return 1
    width = max(len(b) for b in common)
    print(f"{'bench':<{width}}  {'old ns':>14}  {'new ns':>14}  {'ratio':>7}")
    print("-" * (width + 43))
    worst = 0.0
    for b in common:
        ratio = new[b] / old[b] if old[b] else float("inf")
        worst = max(worst, ratio)
        marker = "" if ratio <= args.fail_above else "  <-- regression"
        print(f"{b:<{width}}  {old[b]:>14.0f}  {new[b]:>14.0f}  {ratio:>6.2f}x{marker}")
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    if only_old:
        print(f"\nonly in {args.old}: {', '.join(only_old)}")
    if only_new:
        print(f"only in {args.new}: {', '.join(only_new)}")
    geo = 1.0
    for b in common:
        if old[b] > 0 and new[b] > 0:
            geo *= new[b] / old[b]
    geo **= 1.0 / len(common)
    print(f"\n{len(common)} common benches; geometric-mean ratio {geo:.2f}x")
    if args.fail_above < float("inf") and worst > args.fail_above:
        print(f"FAIL: worst ratio {worst:.2f}x exceeds {args.fail_above:.2f}x")
        return 1
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    sub = ap.add_subparsers(dest="mode", required=True)
    c = sub.add_parser("collect", help="raw bench output -> wrapped JSON")
    c.add_argument("input", nargs="?", default="-", help="raw output file or - for stdin")
    c.add_argument("-o", "--output", help="destination file (default stdout)")
    d = sub.add_parser("compare", help="diff two BENCH_*.json files")
    d.add_argument("old")
    d.add_argument("new")
    d.add_argument(
        "--fail-above",
        type=float,
        default=float("inf"),
        help="exit 1 if any common bench regressed by more than this factor",
    )
    args = ap.parse_args()
    return cmd_collect(args) if args.mode == "collect" else cmd_compare(args)


if __name__ == "__main__":
    sys.exit(main())
